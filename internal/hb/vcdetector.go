package hb

import (
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/report"
	"goldilocks/internal/vclock"
)

// Detector is an online, precise vector-clock race detector over the
// extended happens-before relation — the classical approach (Djit+,
// TRaDe) that the paper cites as "precise but typically computationally
// expensive". It serves both as a second precision oracle and as the
// cost baseline in the detector-comparison benchmarks.
//
// Per data variable it keeps: the last plain write as a FastTrack-style
// epoch, the accumulated clocks of plain reads since that write, the
// accumulated clock of commits that wrote the variable, and the
// accumulated clock of commits that accessed it at all. The check at
// each access follows the conflicting-pair cases of the extended-race
// definition.
type Detector struct {
	sem       event.TxnSemantics
	threads   map[event.Tid]*vclock.VC
	locks     map[event.Addr]*vclock.VC
	volatiles map[event.Volatile]*vclock.VC
	txnOrder  map[event.Variable]*vclock.VC // commit-to-commit synchronizes-with
	txnAll    *vclock.VC                    // atomic-order semantics
	vars      map[event.Variable]*varClocks

	// chans assigns channel operations their conveyor-slot elements; the
	// slot clocks share the volatiles map (the FieldID namespaces are
	// disjoint). An operation the tracker rejects is a malformed
	// linearization: the detector panics with a structured corruption
	// report, which jrt's guard recovers into a quarantine.
	chans *event.ChanTracker
}

type varClocks struct {
	// lastWrite is the last plain write as a FastTrack-style epoch: a
	// write at time ts by thread t happens-before clock C iff
	// ts <= C[t], because any join chain that propagated the writer's
	// tick propagated its whole clock. One comparison instead of a
	// clock-sized one. The zero epoch means "never written".
	lastWrite   vclock.Epoch
	reads       *vclock.VC // join of plain reads since last plain write (nil if none)
	txnWrites   *vclock.VC // join of commits writing the variable
	txnAccesses *vclock.VC // join of commits reading or writing the variable
}

// NewDetector returns an empty vector-clock detector with the paper's
// shared-variable transaction semantics.
func NewDetector() *Detector { return NewDetectorSem(event.TxnSharedVariable) }

// NewDetectorSem returns a vector-clock detector under the chosen
// transaction semantics.
func NewDetectorSem(sem event.TxnSemantics) *Detector {
	return &Detector{
		sem:       sem,
		threads:   make(map[event.Tid]*vclock.VC),
		locks:     make(map[event.Addr]*vclock.VC),
		volatiles: make(map[event.Volatile]*vclock.VC),
		txnOrder:  make(map[event.Variable]*vclock.VC),
		txnAll:    vclock.New(),
		vars:      make(map[event.Variable]*varClocks),
		chans:     event.NewChanTracker(),
	}
}

// Name implements detect.Detector.
func (d *Detector) Name() string { return "vectorclock" }

func (d *Detector) clockOf(t event.Tid) *vclock.VC {
	c, ok := d.threads[t]
	if !ok {
		c = vclock.New()
		c.Tick(t) // distinguish the thread's own position from the zero clock
		d.threads[t] = c
	}
	return c
}

func (d *Detector) varOf(v event.Variable) *varClocks {
	vc, ok := d.vars[v]
	if !ok {
		vc = &varClocks{}
		d.vars[v] = vc
	}
	return vc
}

// Step implements detect.Detector.
func (d *Detector) Step(a event.Action) []detect.Race {
	if a.Kind.IsChan() {
		na, err := d.chans.Normalize(a)
		if err != nil {
			panic(&report.Report{Kind: report.Corruption, Detail: "vectorclock: malformed linearization: " + err.Error()})
		}
		a = na
	}
	c := d.clockOf(a.Thread)
	switch a.Kind {
	case event.KindAcquire:
		if lc, ok := d.locks[a.Obj]; ok {
			c.Join(lc)
		}
		c.Tick(a.Thread)
	case event.KindRelease:
		c.Tick(a.Thread)
		lc, ok := d.locks[a.Obj]
		if !ok {
			lc = vclock.New()
			d.locks[a.Obj] = lc
		}
		lc.Join(c)
	case event.KindVolatileRead:
		if wc, ok := d.volatiles[a.Volatile()]; ok {
			c.Join(wc)
		}
		c.Tick(a.Thread)
	case event.KindVolatileWrite:
		c.Tick(a.Thread)
		vv := a.Volatile()
		wc, ok := d.volatiles[vv]
		if !ok {
			wc = vclock.New()
			d.volatiles[vv] = wc
		}
		wc.Join(c)
	case event.KindChanMake:
		c.Tick(a.Thread)
	case event.KindChanSend, event.KindChanRecv:
		// Acquire the slot's (or, for a drain recv, the closed element's)
		// accumulated clock, then publish back onto it — drain recvs
		// publish nothing (the close's broadcast is one-directional).
		vv := a.Volatile()
		if wc, ok := d.volatiles[vv]; ok {
			c.Join(wc)
		}
		c.Tick(a.Thread)
		if !(a.Kind == event.KindChanRecv && a.Field == event.ChanClosedField) {
			wc, ok := d.volatiles[vv]
			if !ok {
				wc = vclock.New()
				d.volatiles[vv] = wc
			}
			wc.Join(c)
		}
	case event.KindChanClose:
		c.Tick(a.Thread)
		vv := a.Volatile()
		wc, ok := d.volatiles[vv]
		if !ok {
			wc = vclock.New()
			d.volatiles[vv] = wc
		}
		wc.Join(c)
	case event.KindFork:
		c.Tick(a.Thread)
		d.clockOf(a.Peer).Join(c)
	case event.KindJoin:
		if uc, ok := d.threads[a.Peer]; ok {
			c.Join(uc)
		}
		c.Tick(a.Thread)
	case event.KindAlloc:
		c.Tick(a.Thread)
		// A fresh object has fresh variables: drop any state left from a
		// previous object at the same address.
		for v := range d.vars {
			if v.Obj == a.Obj {
				delete(d.vars, v)
			}
		}
		for v := range d.txnOrder {
			if v.Obj == a.Obj {
				delete(d.txnOrder, v)
			}
		}
	case event.KindRead:
		v := a.Variable()
		s := d.varOf(v)
		c.Tick(a.Thread)
		var races []detect.Race
		if !s.lastWrite.LessEq(c) {
			races = append(races, detect.Race{Var: v, Access: a})
		} else if s.txnWrites != nil && !s.txnWrites.LessEq(c) {
			races = append(races, detect.Race{Var: v, Access: a})
		}
		if s.reads == nil {
			s.reads = vclock.New()
		}
		s.reads.Join(c)
		return races
	case event.KindWrite:
		v := a.Variable()
		s := d.varOf(v)
		c.Tick(a.Thread)
		var races []detect.Race
		switch {
		case !s.lastWrite.LessEq(c):
			races = append(races, detect.Race{Var: v, Access: a})
		case s.reads != nil && !s.reads.LessEq(c):
			races = append(races, detect.Race{Var: v, Access: a})
		case s.txnAccesses != nil && !s.txnAccesses.LessEq(c):
			races = append(races, detect.Race{Var: v, Access: a})
		}
		s.lastWrite = vclock.Epoch{Tid: a.Thread, Time: c.Get(a.Thread)}
		s.reads = nil
		return races
	case event.KindCommit:
		// Incoming commit-to-commit edges under the configured
		// transaction semantics.
		switch d.sem {
		case event.TxnAtomicOrder:
			c.Join(d.txnAll)
		case event.TxnWriteToRead:
			for _, v := range a.Reads {
				if tc, ok := d.txnOrder[v]; ok {
					c.Join(tc)
				}
			}
		default:
			for _, v := range a.Reads {
				if tc, ok := d.txnOrder[v]; ok {
					c.Join(tc)
				}
			}
			for _, v := range a.Writes {
				if tc, ok := d.txnOrder[v]; ok {
					c.Join(tc)
				}
			}
		}
		c.Tick(a.Thread)
		var races []detect.Race
		seen := make(map[event.Variable]bool)
		check := func(v event.Variable, isWrite bool) {
			if seen[v] {
				return
			}
			seen[v] = true
			s := d.varOf(v)
			// Case 2: commit accessing v vs unordered plain write.
			if !s.lastWrite.LessEq(c) {
				races = append(races, detect.Race{Var: v, Access: a})
				return
			}
			// Case 3: commit writing v vs unordered plain read.
			if isWrite && s.reads != nil && !s.reads.LessEq(c) {
				races = append(races, detect.Race{Var: v, Access: a})
				return
			}
			// Under write-to-read, commit/commit conflicts are races
			// like any others.
			if d.sem == event.TxnWriteToRead {
				if isWrite && s.txnAccesses != nil && !s.txnAccesses.LessEq(c) {
					races = append(races, detect.Race{Var: v, Access: a})
					return
				}
				if !isWrite && s.txnWrites != nil && !s.txnWrites.LessEq(c) {
					races = append(races, detect.Race{Var: v, Access: a})
				}
			}
		}
		for _, v := range a.Writes {
			check(v, true)
		}
		for _, v := range a.Reads {
			check(v, false)
		}
		// Record transactional access clocks and outgoing edges.
		for _, v := range a.Reads {
			d.recordTxn(v, c, false)
		}
		for _, v := range a.Writes {
			d.recordTxn(v, c, true)
		}
		if d.sem == event.TxnAtomicOrder {
			d.txnAll.Join(c)
		}
		return races
	}
	return nil
}

func (d *Detector) recordTxn(v event.Variable, c *vclock.VC, isWrite bool) {
	// Outgoing edge witnesses per semantics: shared-variable publishes
	// through every accessed variable, write-to-read only through
	// written ones, atomic-order through the global clock (handled by
	// the caller).
	if d.sem == event.TxnSharedVariable || (d.sem == event.TxnWriteToRead && isWrite) {
		tc, ok := d.txnOrder[v]
		if !ok {
			tc = vclock.New()
			d.txnOrder[v] = tc
		}
		tc.Join(c)
	}
	s := d.varOf(v)
	if s.txnAccesses == nil {
		s.txnAccesses = vclock.New()
	}
	s.txnAccesses.Join(c)
	if isWrite {
		if s.txnWrites == nil {
			s.txnWrites = vclock.New()
		}
		s.txnWrites.Join(c)
	}
}
