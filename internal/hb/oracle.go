// Package hb implements the extended happens-before relation of Section 3
// of the Goldilocks paper, in two forms:
//
//   - Oracle: an offline reference implementation that assigns a vector
//     clock to every event of a trace and answers happens-before and
//     extended-race queries. It is the ground truth against which the
//     Goldilocks engines are property-tested (Theorem 1).
//   - Detector: an online pure vector-clock race detector (in the style
//     of Djit+/TRaDe), the "precise but typically computationally
//     expensive" baseline the paper contrasts with Goldilocks.
package hb

import (
	"goldilocks/internal/event"
	"goldilocks/internal/report"
	"goldilocks/internal/vclock"
)

// Oracle holds per-event vector clocks for a fixed trace. Build one with
// NewOracle (the paper's shared-variable transaction semantics) or
// NewOracleSem; it is immutable afterwards.
type Oracle struct {
	trace  *event.Trace
	sem    event.TxnSemantics
	clocks []*vclock.VC // clock snapshot of each event, inclusive of itself
}

// NewOracle computes the extended happens-before relation for tr.
//
// The computation processes the linearization in order, maintaining:
// per-thread clocks, per-lock release clocks (a release synchronizes
// with every later acquire of the same lock), per-volatile write clocks
// (a volatile write synchronizes with every later read), fork/join
// edges, and per-variable transactional clocks (a commit synchronizes
// with every later commit sharing at least one accessed variable).
func NewOracle(tr *event.Trace) *Oracle {
	return NewOracleSem(tr, event.TxnSharedVariable)
}

// NewOracleSem computes the extended happens-before relation for tr
// under the chosen transaction semantics.
func NewOracleSem(tr *event.Trace, sem event.TxnSemantics) *Oracle {
	o := &Oracle{trace: tr, sem: sem, clocks: make([]*vclock.VC, tr.Len())}

	threads := make(map[event.Tid]*vclock.VC)
	locks := make(map[event.Addr]*vclock.VC)
	volatiles := make(map[event.Volatile]*vclock.VC)
	txn := make(map[event.Variable]*vclock.VC) // accumulated commit clocks per variable
	txnAll := vclock.New()                     // accumulated commit clocks (atomic-order semantics)
	chans := event.NewChanTracker()            // conveyor-slot assignment for channel ops

	clockOf := func(t event.Tid) *vclock.VC {
		c, ok := threads[t]
		if !ok {
			c = vclock.New()
			threads[t] = c
		}
		return c
	}

	for i := 0; i < tr.Len(); i++ {
		a := tr.At(i)
		if a.Kind.IsChan() {
			na, err := chans.Normalize(a)
			if err != nil {
				panic(&report.Report{Kind: report.Corruption, Detail: "hb oracle: malformed linearization: " + err.Error()})
			}
			a = na
		}
		c := clockOf(a.Thread)

		// Incoming extended synchronizes-with edges.
		switch a.Kind {
		case event.KindAcquire:
			if lc, ok := locks[a.Obj]; ok {
				c.Join(lc)
			}
		case event.KindVolatileRead:
			if wc, ok := volatiles[a.Volatile()]; ok {
				c.Join(wc)
			}
		case event.KindChanSend, event.KindChanRecv:
			// The conveyor slot (or, for a drain recv, the closed element)
			// carries the accumulated clock of its prior operations; both
			// directions of the rendezvous acquire it. A close publishes
			// only (no incoming edge).
			if wc, ok := volatiles[a.Volatile()]; ok {
				c.Join(wc)
			}
		case event.KindJoin:
			if uc, ok := threads[a.Peer]; ok {
				c.Join(uc)
			}
		case event.KindCommit:
			switch sem {
			case event.TxnAtomicOrder:
				c.Join(txnAll)
			case event.TxnWriteToRead:
				// Publication edges: a commit sees every earlier commit
				// that wrote a variable it reads.
				for _, v := range a.Reads {
					if tc, ok := txn[v]; ok {
						c.Join(tc)
					}
				}
			default: // shared variable
				for _, v := range a.Reads {
					if tc, ok := txn[v]; ok {
						c.Join(tc)
					}
				}
				for _, v := range a.Writes {
					if tc, ok := txn[v]; ok {
						c.Join(tc)
					}
				}
			}
		}

		c.Tick(a.Thread)
		o.clocks[i] = c.Copy()

		// Outgoing extended synchronizes-with edges.
		switch a.Kind {
		case event.KindRelease:
			lc, ok := locks[a.Obj]
			if !ok {
				lc = vclock.New()
				locks[a.Obj] = lc
			}
			lc.Join(c)
		case event.KindVolatileWrite:
			vv := a.Volatile()
			wc, ok := volatiles[vv]
			if !ok {
				wc = vclock.New()
				volatiles[vv] = wc
			}
			wc.Join(c)
		case event.KindChanSend, event.KindChanRecv:
			// Publish back onto the slot element — except for a drain recv,
			// which acquires the close's broadcast but releases nothing.
			if !(a.Kind == event.KindChanRecv && a.Field == event.ChanClosedField) {
				vv := a.Volatile()
				wc, ok := volatiles[vv]
				if !ok {
					wc = vclock.New()
					volatiles[vv] = wc
				}
				wc.Join(c)
			}
		case event.KindChanClose:
			vv := a.Volatile()
			wc, ok := volatiles[vv]
			if !ok {
				wc = vclock.New()
				volatiles[vv] = wc
			}
			wc.Join(c)
		case event.KindFork:
			// fork(u) happens-before every action of u: seed u's clock.
			clockOf(a.Peer).Join(c)
		case event.KindCommit:
			switch sem {
			case event.TxnAtomicOrder:
				txnAll.Join(c)
			case event.TxnWriteToRead:
				for _, v := range a.Writes {
					joinInto(txn, v, c)
				}
			default:
				for _, v := range a.Reads {
					joinInto(txn, v, c)
				}
				for _, v := range a.Writes {
					joinInto(txn, v, c)
				}
			}
		}
	}
	return o
}

func joinInto(m map[event.Variable]*vclock.VC, v event.Variable, c *vclock.VC) {
	tc, ok := m[v]
	if !ok {
		tc = vclock.New()
		m[v] = tc
	}
	tc.Join(c)
}

// Trace returns the trace the oracle was built over.
func (o *Oracle) Trace() *event.Trace { return o.trace }

// HappensBefore reports whether event i happens-before event j under the
// extended happens-before relation (i may equal j; an event trivially
// happens-before-or-equals itself).
func (o *Oracle) HappensBefore(i, j int) bool {
	return o.clocks[i].LessEq(o.clocks[j])
}

// Ordered reports whether events i and j are ordered either way.
func (o *Oracle) Ordered(i, j int) bool {
	return o.HappensBefore(i, j) || o.HappensBefore(j, i)
}

// conflicting reports whether actions a and b form one of the
// conflicting pairs of the extended-race definition on variable v:
//
//  1. write(o,d) vs read/write(o,d)
//  2. write(o,d) vs commit with (o,d) ∈ R∪W
//  3. read(o,d) vs commit with (o,d) ∈ W
//
// Two plain reads never conflict. Commit/commit pairs are exempt under
// the shared-variable and atomic-order semantics, where any two commits
// touching a common variable are ordered by construction; under the
// write-to-read semantics that guarantee disappears, so a commit pair
// conflicts exactly like plain accesses would (one of them must write
// v).
func (o *Oracle) conflicting(a, b event.Action, v event.Variable) bool {
	if a.Kind == event.KindCommit && b.Kind == event.KindCommit {
		if o.sem != event.TxnWriteToRead {
			return false
		}
		return a.WritesVar(v) || b.WritesVar(v)
	}
	// Normalize: let x be the plain access, y the other action.
	pairs := [2][2]event.Action{{a, b}, {b, a}}
	for _, p := range pairs {
		x, y := p[0], p[1]
		switch x.Kind {
		case event.KindWrite:
			if !x.Accesses(v) {
				continue
			}
			if y.Accesses(v) { // read, write, or commit touching v
				return true
			}
		case event.KindRead:
			if !x.Accesses(v) {
				continue
			}
			if y.Kind == event.KindWrite && y.Accesses(v) {
				return true
			}
			if y.Kind == event.KindCommit && y.WritesVar(v) {
				return true
			}
		}
	}
	return false
}

// RacePair describes an extended race found by the oracle: two unordered
// conflicting accesses to Var at trace positions I < J.
type RacePair struct {
	Var  event.Variable
	I, J int
}

// Races enumerates every extended race in the trace: all unordered
// conflicting pairs, grouped by variable, in (J, I) lexicographic order.
// Cost is quadratic in the number of accesses per variable; the oracle
// exists for testing, not production monitoring.
func (o *Oracle) Races() []RacePair {
	var out []RacePair
	accessesOf := o.accessIndex()
	for j := 0; j < o.trace.Len(); j++ {
		b := o.trace.At(j)
		for _, v := range actionVars(b) {
			for _, i := range accessesOf[v] {
				if i >= j {
					break
				}
				a := o.trace.At(i)
				if o.conflicting(a, b, v) && !o.Ordered(i, j) {
					out = append(out, RacePair{Var: v, I: i, J: j})
				}
			}
		}
	}
	return out
}

// FirstRacePos returns the earliest trace position j that completes an
// extended race (the position where a precise online detector must
// report), and the corresponding pair; ok is false if the trace is free
// of extended races.
func (o *Oracle) FirstRacePos() (pair RacePair, ok bool) {
	accessesOf := o.accessIndex()
	for j := 0; j < o.trace.Len(); j++ {
		b := o.trace.At(j)
		for _, v := range actionVars(b) {
			for _, i := range accessesOf[v] {
				if i >= j {
					break
				}
				a := o.trace.At(i)
				if o.conflicting(a, b, v) && !o.Ordered(i, j) {
					return RacePair{Var: v, I: i, J: j}, true
				}
			}
		}
	}
	return RacePair{}, false
}

// RacyVars returns the set of variables involved in at least one
// extended race anywhere in the trace.
func (o *Oracle) RacyVars() map[event.Variable]bool {
	out := make(map[event.Variable]bool)
	for _, r := range o.Races() {
		out[r.Var] = true
	}
	return out
}

func (o *Oracle) accessIndex() map[event.Variable][]int {
	idx := make(map[event.Variable][]int)
	for i := 0; i < o.trace.Len(); i++ {
		for _, v := range actionVars(o.trace.At(i)) {
			idx[v] = append(idx[v], i)
		}
	}
	return idx
}

// actionVars returns the data variables an action accesses.
func actionVars(a event.Action) []event.Variable {
	switch a.Kind {
	case event.KindRead, event.KindWrite:
		return []event.Variable{a.Variable()}
	case event.KindCommit:
		seen := make(map[event.Variable]bool, len(a.Reads)+len(a.Writes))
		var out []event.Variable
		for _, v := range a.Reads {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		for _, v := range a.Writes {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return out
	}
	return nil
}
