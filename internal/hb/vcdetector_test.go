package hb_test

import (
	"testing"

	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/hb"
)

func run(tr *event.Trace) []detect.Race { return detect.RunTrace(hb.NewDetector(), tr) }

func TestVCLockDiscipline(t *testing.T) {
	tr := event.NewBuilder().
		Fork(1, 2).
		Acquire(1, 20).Write(1, 10, 0).Release(1, 20).
		Acquire(2, 20).Write(2, 10, 0).Release(2, 20).
		Trace()
	if rs := run(tr); len(rs) != 0 {
		t.Errorf("lock discipline flagged: %v", rs)
	}
}

func TestVCUnsyncWriteWrite(t *testing.T) {
	tr := event.NewBuilder().
		Fork(1, 2).
		Write(1, 10, 0).
		Write(2, 10, 0).
		Trace()
	rs := run(tr)
	if len(rs) != 1 || rs[0].Pos != 2 {
		t.Errorf("races = %v", rs)
	}
}

func TestVCReadSharingThenWrite(t *testing.T) {
	tr := event.NewBuilder().
		Write(1, 10, 0).
		Fork(1, 2).
		Fork(1, 3).
		Read(2, 10, 0).
		Read(3, 10, 0).  // read-read fine
		Write(1, 10, 0). // races with both reads
		Trace()
	rs := run(tr)
	if len(rs) != 1 || rs[0].Pos != 5 {
		t.Errorf("races = %v", rs)
	}
}

func TestVCVolatileEdge(t *testing.T) {
	tr := event.NewBuilder().
		Write(1, 10, 0).
		VolatileWrite(1, 1, 0).
		Fork(1, 2).
		VolatileRead(2, 1, 0).
		Write(2, 10, 0).
		Trace()
	if rs := run(tr); len(rs) != 0 {
		t.Errorf("volatile handshake flagged: %v", rs)
	}
}

func TestVCJoinEdge(t *testing.T) {
	tr := event.NewBuilder().
		Fork(1, 2).
		Write(2, 10, 0).
		Join(1, 2).
		Write(1, 10, 0).
		Trace()
	if rs := run(tr); len(rs) != 0 {
		t.Errorf("join edge flagged: %v", rs)
	}
}

func TestVCAllocResets(t *testing.T) {
	tr := event.NewBuilder().
		Fork(1, 2).
		Write(1, 10, 0).
		Write(2, 11, 0).
		Alloc(1, 12).
		Write(1, 12, 0).
		Trace()
	if rs := run(tr); len(rs) != 0 {
		t.Errorf("fresh alloc flagged: %v", rs)
	}
}

func TestVCTransactionCases(t *testing.T) {
	v := event.Variable{Obj: 10, Field: 0}
	// Commit-write vs plain read: race.
	tr := event.NewBuilder().
		Fork(1, 2).
		Read(1, 10, 0).
		Commit(2, nil, []event.Variable{v}).
		Trace()
	if rs := run(tr); len(rs) != 1 {
		t.Errorf("txn-write vs plain-read: %v", rs)
	}
	// Commit-read vs plain read: fine.
	tr = event.NewBuilder().
		Fork(1, 2).
		Read(1, 10, 0).
		Commit(2, []event.Variable{v}, nil).
		Trace()
	if rs := run(tr); len(rs) != 0 {
		t.Errorf("txn-read vs plain-read: %v", rs)
	}
	// Plain write after unordered commit access: race (case 2 at the
	// later write).
	tr = event.NewBuilder().
		Fork(1, 2).
		Commit(2, []event.Variable{v}, nil).
		Write(1, 10, 0).
		Trace()
	if rs := run(tr); len(rs) != 1 {
		t.Errorf("plain-write vs txn-read: %v", rs)
	}
	// Plain read after unordered commit write: race at the read.
	tr = event.NewBuilder().
		Fork(1, 2).
		Commit(2, nil, []event.Variable{v}).
		Read(1, 10, 0).
		Trace()
	if rs := run(tr); len(rs) != 1 {
		t.Errorf("plain-read vs txn-write: %v", rs)
	}
	// Chained commits order a downstream plain access.
	w := event.Variable{Obj: 11, Field: 0}
	tr = event.NewBuilder().
		Fork(1, 2).
		Write(1, 10, 0).
		Commit(1, nil, []event.Variable{w}).
		Commit(2, []event.Variable{w}, nil).
		Write(2, 10, 0).
		Trace()
	if rs := run(tr); len(rs) != 0 {
		t.Errorf("commit chain flagged: %v", rs)
	}
}

func TestVCName(t *testing.T) {
	if hb.NewDetector().Name() != "vectorclock" {
		t.Error("name changed")
	}
}

func TestVCSemanticsVariants(t *testing.T) {
	v := event.Variable{Obj: 10, Field: 0}
	w := event.Variable{Obj: 11, Field: 0}
	// Disjoint commits then a downstream plain access: only
	// atomic-order sees the edge.
	tr := event.NewBuilder().
		Fork(1, 2).
		Write(1, 20, 0).
		Commit(1, nil, []event.Variable{v}).
		Commit(2, nil, []event.Variable{w}).
		Write(2, 20, 0).
		Trace()
	if rs := detect.RunTrace(hb.NewDetectorSem(event.TxnAtomicOrder), tr); len(rs) != 0 {
		t.Errorf("atomic-order: %v", rs)
	}
	if rs := detect.RunTrace(hb.NewDetectorSem(event.TxnSharedVariable), tr); len(rs) == 0 {
		t.Error("shared-variable missed the disjoint-commit race")
	}
	// Under write-to-read, two commits writing the same variable race.
	tr = event.NewBuilder().
		Fork(1, 2).
		Commit(1, nil, []event.Variable{v}).
		Commit(2, nil, []event.Variable{v}).
		Trace()
	if rs := detect.RunTrace(hb.NewDetectorSem(event.TxnWriteToRead), tr); len(rs) == 0 {
		t.Error("write-to-read: unordered writer commits must race")
	}
	if rs := detect.RunTrace(hb.NewDetectorSem(event.TxnSharedVariable), tr); len(rs) != 0 {
		t.Errorf("shared-variable: commit pair exempt: %v", rs)
	}
}
