package hb_test

import (
	"testing"

	"goldilocks/internal/event"
	"goldilocks/internal/hb"
)

func mkOracle(b *event.Builder) *hb.Oracle { return hb.NewOracle(b.Trace()) }

func TestProgramOrder(t *testing.T) {
	o := mkOracle(event.NewBuilder().
		Write(1, 10, 0).
		Write(1, 10, 1).
		Write(1, 10, 2))
	for i := 0; i < 3; i++ {
		for j := i; j < 3; j++ {
			if !o.HappensBefore(i, j) {
				t.Errorf("program order: %d must happen-before %d", i, j)
			}
		}
	}
	if o.HappensBefore(2, 0) {
		t.Error("later action happens-before earlier one")
	}
}

func TestLockEdges(t *testing.T) {
	// T1 releases, T2 acquires the same lock: edge. A different lock: no
	// edge.
	tr := event.NewBuilder().
		Acquire(1, 20). // 0
		Release(1, 20). // 1
		Acquire(2, 21). // 2
		Acquire(2, 20). // 3
		Write(2, 10, 0) // 4
	o := mkOracle(tr)
	if !o.HappensBefore(1, 3) {
		t.Error("release must happen-before later acquire of same lock")
	}
	if o.HappensBefore(1, 2) {
		t.Error("release edges must not leak to other locks")
	}
	if !o.HappensBefore(0, 4) {
		t.Error("transitivity through lock edge failed")
	}
}

func TestVolatileEdges(t *testing.T) {
	tr := event.NewBuilder().
		VolatileWrite(1, 1, 0). // 0
		VolatileRead(2, 1, 0).  // 1
		VolatileRead(2, 1, 1)   // 2
	o := mkOracle(tr)
	if !o.HappensBefore(0, 1) {
		t.Error("volatile write must happen-before later read")
	}
	// A read of a different volatile sees no edge; (2) is only ordered
	// after (1) by T2's program order, not after (0)... except via (1).
	tr2 := event.NewBuilder().
		VolatileWrite(1, 1, 0).
		VolatileRead(2, 1, 1)
	o2 := mkOracle(tr2)
	if o2.HappensBefore(0, 1) {
		t.Error("edge leaked across distinct volatiles")
	}
}

func TestForkJoinEdges(t *testing.T) {
	tr := event.NewBuilder().
		Write(1, 10, 0). // 0
		Fork(1, 2).      // 1
		Write(2, 10, 0). // 2
		Join(1, 2).      // 3
		Write(1, 10, 0)  // 4
	o := mkOracle(tr)
	if !o.HappensBefore(0, 2) {
		t.Error("pre-fork action must happen-before child's actions")
	}
	if !o.HappensBefore(2, 4) {
		t.Error("child's action must happen-before post-join actions")
	}
	if _, racy := o.FirstRacePos(); racy {
		t.Error("fork/join chain reported racy")
	}
}

func TestCommitEdges(t *testing.T) {
	v := event.Variable{Obj: 10, Field: 0}
	w := event.Variable{Obj: 10, Field: 1}
	tr := event.NewBuilder().
		Fork(1, 2).                          // 0
		Commit(1, nil, []event.Variable{v}). // 1
		Commit(2, []event.Variable{v}, nil). // 2: shares v with 1
		Commit(1, nil, []event.Variable{w}). // 3
		Commit(2, []event.Variable{}, nil)   // 4: shares nothing
	o := mkOracle(tr)
	if !o.HappensBefore(1, 2) {
		t.Error("commits sharing a variable must be ordered")
	}
	if o.HappensBefore(3, 4) {
		t.Error("disjoint commits must not be ordered")
	}
}

func TestRaceEnumeration(t *testing.T) {
	tr := event.NewBuilder().
		Fork(1, 2).
		Write(1, 10, 0). // 1
		Write(2, 10, 0). // 2: races with 1
		Read(2, 10, 1).  // 3
		Write(1, 10, 1)  // 4: races with 3
	o := mkOracle(tr)
	races := o.Races()
	if len(races) != 2 {
		t.Fatalf("races = %v, want 2", races)
	}
	if races[0].I != 1 || races[0].J != 2 {
		t.Errorf("first pair = %+v", races[0])
	}
	if races[1].I != 3 || races[1].J != 4 {
		t.Errorf("second pair = %+v", races[1])
	}
	first, ok := o.FirstRacePos()
	if !ok || first.J != 2 {
		t.Errorf("FirstRacePos = %+v, %v", first, ok)
	}
	rv := o.RacyVars()
	if len(rv) != 2 {
		t.Errorf("RacyVars = %v", rv)
	}
}

func TestReadReadNotConflicting(t *testing.T) {
	tr := event.NewBuilder().
		Fork(1, 2).
		Read(1, 10, 0).
		Read(2, 10, 0)
	if _, racy := mkOracle(tr).FirstRacePos(); racy {
		t.Error("read-read pair reported as race")
	}
}

func TestCommitCommitNotConflicting(t *testing.T) {
	v := event.Variable{Obj: 10, Field: 0}
	tr := event.NewBuilder().
		Fork(1, 2).
		Commit(1, nil, []event.Variable{v}).
		Commit(2, nil, []event.Variable{v})
	if _, racy := mkOracle(tr).FirstRacePos(); racy {
		t.Error("commit-commit pair reported as race")
	}
}

func TestCommitVsPlainConflicts(t *testing.T) {
	v := event.Variable{Obj: 10, Field: 0}
	// Case 2: plain write vs commit reading v.
	tr := event.NewBuilder().
		Fork(1, 2).
		Write(1, 10, 0).
		Commit(2, []event.Variable{v}, nil)
	if _, racy := mkOracle(tr).FirstRacePos(); !racy {
		t.Error("plain write vs commit-read not reported")
	}
	// Case 3: plain read vs commit writing v.
	tr = event.NewBuilder().
		Fork(1, 2).
		Read(1, 10, 0).
		Commit(2, nil, []event.Variable{v})
	if _, racy := mkOracle(tr).FirstRacePos(); !racy {
		t.Error("plain read vs commit-write not reported")
	}
	// Plain read vs commit merely reading v: no conflict.
	tr = event.NewBuilder().
		Fork(1, 2).
		Read(1, 10, 0).
		Commit(2, []event.Variable{v}, nil)
	if _, racy := mkOracle(tr).FirstRacePos(); racy {
		t.Error("plain read vs commit-read reported as race")
	}
}

func TestOrderedHelper(t *testing.T) {
	tr := event.NewBuilder().
		Fork(1, 2).
		Write(1, 10, 0).
		Write(2, 11, 0)
	o := mkOracle(tr)
	if !o.Ordered(0, 1) || !o.Ordered(1, 0) {
		t.Error("Ordered must be symmetric in its verdict")
	}
	if o.Ordered(1, 2) {
		t.Error("post-fork actions of different threads reported ordered")
	}
}
