package cluster

import (
	"fmt"
	"testing"
)

func testNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:7766", i+1)
	}
	return out
}

// TestRingDeterministic: two rings over the same members (in any order)
// agree on every owner — routing must not depend on which node built
// the ring or how its member list was ordered.
func TestRingDeterministic(t *testing.T) {
	nodes := testNodes(5)
	shuffled := []string{nodes[3], nodes[0], nodes[4], nodes[2], nodes[1]}
	a, b := NewRing(nodes, 0), NewRing(shuffled, 0)
	for i := 0; i < 1000; i++ {
		s := fmt.Sprintf("session-%d", i)
		if a.Owner(s) != b.Owner(s) {
			t.Fatalf("owner of %s differs by member order: %s vs %s", s, a.Owner(s), b.Owner(s))
		}
	}
}

// TestRingDistribution: with vnodes, no node owns a wildly
// disproportionate share of sessions.
func TestRingDistribution(t *testing.T) {
	nodes := testNodes(4)
	r := NewRing(nodes, 0)
	counts := make(map[string]int)
	const total = 4000
	for i := 0; i < total; i++ {
		counts[r.Owner(fmt.Sprintf("session-%d", i))]++
	}
	want := total / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c < want/3 || c > want*3 {
			t.Errorf("node %s owns %d of %d sessions (expected near %d)", n, c, total, want)
		}
	}
}

// TestRingSuccessors: successors are distinct physical nodes, exclude
// the owner, and are capped by fleet size.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(testNodes(4), 0)
	for i := 0; i < 200; i++ {
		s := fmt.Sprintf("session-%d", i)
		owner := r.Owner(s)
		succ := r.Successors(s, 2)
		if len(succ) != 2 {
			t.Fatalf("%s: got %d successors, want 2", s, len(succ))
		}
		seen := map[string]bool{owner: true}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("%s: duplicate or owner in successors %v (owner %s)", s, succ, owner)
			}
			seen[n] = true
		}
	}
	if got := r.Successors("x", 10); len(got) != 3 {
		t.Errorf("successors capped wrong: got %d, want 3 (fleet of 4 minus owner)", len(got))
	}
}

// TestRingFailoverProperty is the property replica placement relies on:
// remove a session's owner from the ring, and the new owner is exactly
// the dead owner's first successor — the node that already holds the
// freshest replica.
func TestRingFailoverProperty(t *testing.T) {
	nodes := testNodes(5)
	r := NewRing(nodes, 0)
	for i := 0; i < 1000; i++ {
		s := fmt.Sprintf("session-%d", i)
		owner := r.Owner(s)
		succ := r.Successors(s, 2)
		var survivors []string
		for _, n := range nodes {
			if n != owner {
				survivors = append(survivors, n)
			}
		}
		if got := NewRing(survivors, 0).Owner(s); got != succ[0] {
			t.Fatalf("%s: owner after removing %s is %s, want first successor %s", s, owner, got, succ[0])
		}
	}
}

// TestRingEmptyAndSingle: degenerate fleets behave sanely.
func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(nil, 0).Owner("s"); got != "" {
		t.Errorf("empty ring owner = %q, want empty", got)
	}
	one := NewRing([]string{"a:1"}, 0)
	if got := one.Owner("s"); got != "a:1" {
		t.Errorf("single-node owner = %q, want a:1", got)
	}
	if got := one.Successors("s", 2); len(got) != 0 {
		t.Errorf("single-node successors = %v, want none", got)
	}
	if got := NewRing([]string{"a:1", "a:1", ""}, 0).Len(); got != 1 {
		t.Errorf("duplicate/empty members collapse to %d nodes, want 1", got)
	}
}
