// Package cluster turns a fleet of goldilocksd nodes into one logical
// detection service: a consistent-hash ring assigns each session an owning
// node, a heartbeat failure detector tracks which nodes are alive, each
// checkpoint is replicated to the sessions' ring successors, and a
// coordinator migrates sessions for drains and rebalances. Clients use
// server.DialFleet against the member list; the ring plus NOT_OWNER
// redirects route them to the owner, and replica promotion plus journal
// replay make a node death invisible to callers.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is how many ring points each physical node gets.
// Virtual nodes smooth the key distribution: with V points per node the
// expected per-node share deviates by O(1/sqrt(V)) instead of O(1).
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring over a set of node
// addresses. Sessions hash to a point; the owner is the first node
// point at or after it (wrapping), and the successors — the next
// distinct physical nodes along the ring — hold the session's replicas.
// The successor property is what makes failover deterministic: when the
// owner is removed from the member set, the new owner of every one of
// its sessions is exactly its first successor, which already holds a
// replica.
type Ring struct {
	nodes  []string // distinct physical nodes, sorted (for inspection)
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the given nodes with vnodes points each
// (0 means DefaultVnodes). Duplicate addresses collapse; an empty node
// list yields an empty ring whose Owner returns "".
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	uniq := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || uniq[n] {
			continue
		}
		uniq[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node // total order even on hash collisions
	})
	return r
}

// Nodes returns the distinct physical nodes on the ring, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the number of physical nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// hash64 hashes a string to a ring position: FNV-1a, then a
// SplitMix64-style finalizer. Raw FNV of near-identical keys (the
// vnode names differ only in a suffix digit) clusters on the ring and
// skews ownership badly; the avalanche step spreads them uniformly.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// search returns the index of the first point at or after h, wrapping.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the node that owns the session, or "" on an empty ring.
func (r *Ring) Owner(session string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(hash64(session))].node
}

// Successors returns up to k distinct physical nodes after the
// session's owner, in ring order — the replica holders. The owner
// itself is excluded. Fewer than k nodes on the ring yields fewer
// successors.
func (r *Ring) Successors(session string, k int) []string {
	if len(r.points) == 0 || k <= 0 {
		return nil
	}
	start := r.search(hash64(session))
	owner := r.points[start].node
	seen := map[string]bool{owner: true}
	var out []string
	for i := 1; i < len(r.points) && len(out) < k; i++ {
		n := r.points[(start+i)%len(r.points)].node
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
