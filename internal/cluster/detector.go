package cluster

import (
	"context"
	"sort"
	"sync"
	"time"

	"goldilocks/internal/server"
)

// ProbeConfig tunes the heartbeat failure detector.
type ProbeConfig struct {
	// Interval between liveness probes of each peer. Default 500ms.
	Interval time.Duration
	// Timeout bounds one probe exchange. Default 1s.
	Timeout time.Duration
	// SuspectAfter is how many consecutive probe failures mark a peer
	// dead. One failure is routine (a dropped SYN, a GC pause); a node is
	// only declared dead — and its sessions only rerouted — after this
	// many in a row. Default 3.
	SuspectAfter int
}

func (cfg ProbeConfig) withDefaults() ProbeConfig {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3
	}
	return cfg
}

// PeerState is one peer as the failure detector sees it.
type PeerState struct {
	Addr     string    `json:"addr"`
	Alive    bool      `json:"alive"`
	Draining bool      `json:"draining,omitempty"`
	Sessions int       `json:"sessions"`
	Failures int       `json:"failures,omitempty"` // consecutive probe failures
	LastSeen time.Time `json:"last_seen,omitempty"`
}

// Detector is a per-node heartbeat failure detector: it probes every
// peer over the admin protocol at a fixed interval and declares a peer
// dead after SuspectAfter consecutive failures. Draining state travels
// in ping replies, so routing converges away from a draining node
// within one probe interval without any extra gossip.
//
// Every node runs its own detector over the same static member list;
// there is no elected observer to lose.
type Detector struct {
	cfg   ProbeConfig
	peers []string

	mu    sync.Mutex
	state map[string]*PeerState

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewDetector builds (but does not start) a detector probing peers.
// Peers start out alive with zero failures: a fleet booting in any
// order must not mark a slightly-later peer dead before its first
// probe succeeds.
func NewDetector(peers []string, cfg ProbeConfig) *Detector {
	d := &Detector{cfg: cfg.withDefaults(), stop: make(chan struct{}), state: make(map[string]*PeerState)}
	for _, p := range peers {
		if p == "" || d.state[p] != nil {
			continue
		}
		d.peers = append(d.peers, p)
		d.state[p] = &PeerState{Addr: p, Alive: true}
	}
	return d
}

// Start launches one prober goroutine per peer.
func (d *Detector) Start() {
	for _, p := range d.peers {
		d.wg.Add(1)
		go d.probeLoop(p)
	}
}

// Stop halts probing and waits for the probers to exit.
func (d *Detector) Stop() {
	close(d.stop)
	d.wg.Wait()
}

func (d *Detector) probeLoop(peer string) {
	defer d.wg.Done()
	t := time.NewTicker(d.cfg.Interval)
	defer t.Stop()
	for {
		d.probe(peer)
		select {
		case <-d.stop:
			return
		case <-t.C:
		}
	}
}

func (d *Detector) probe(peer string) {
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.Timeout)
	info, err := server.Ping(ctx, peer)
	cancel()
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.state[peer]
	if err != nil {
		st.Failures++
		if st.Failures >= d.cfg.SuspectAfter {
			st.Alive = false
		}
		return
	}
	st.Failures = 0
	st.Alive = true
	st.Draining = info.Draining
	st.Sessions = info.Sessions
	st.LastSeen = time.Now()
}

// View returns a snapshot of every peer's state, sorted by address.
func (d *Detector) View() []PeerState {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]PeerState, 0, len(d.peers))
	for _, p := range d.peers {
		out = append(out, *d.state[p])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Routable returns the peers that should be on the routing ring: alive
// and not draining.
func (d *Detector) Routable() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for _, p := range d.peers {
		if st := d.state[p]; st.Alive && !st.Draining {
			out = append(out, p)
		}
	}
	return out
}
