package cluster

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"

	"goldilocks/internal/obs"
	"goldilocks/internal/server"
)

// NodeConfig configures one cluster member's routing and replication.
type NodeConfig struct {
	// Self is this node's advertised address, as it appears in Members.
	Self string
	// Members is the full static member list (including Self).
	Members []string
	// Replicas is K: how many ring successors receive each checkpoint.
	// 0 disables replication (a death then loses detached progress, but
	// clients still converge by re-streaming from zero). Capped by the
	// fleet size minus one.
	Replicas int
	// Vnodes per physical node on the ring; 0 means DefaultVnodes.
	Vnodes int
	// Probe tunes the failure detector.
	Probe ProbeConfig
	// Logger, when set, receives replication and routing diagnostics.
	// Nil means discard.
	Logger *slog.Logger
	// Tracer, when set, observes each successful replica push's latency
	// into the replica_push stage histogram. Nil disables.
	Tracer *obs.Tracer
}

// Node is the cluster personality of one goldilocksd process: a
// server.Router that consistent-hashes sessions over the live members,
// plus an asynchronous replicator that mirrors every checkpoint to the
// session's ring successors. Wire it into server.Config as Router,
// OnCheckpoint and OnDrain.
type Node struct {
	cfg      NodeConfig
	det      *Detector
	draining atomic.Bool
	repl     chan replJob
	stop     chan struct{}
	done     chan struct{}
	dropped  atomic.Uint64 // replication jobs dropped on queue overflow
}

type replJob struct {
	id      string
	applied uint64
	data    []byte
}

// replQueueLen bounds the async replication queue. Checkpoints are
// periodic and coarse; a full queue drops the oldest update of that
// moment (a later checkpoint supersedes it anyway).
const replQueueLen = 128

// NewNode builds a node over the member list and starts its failure
// detector and replicator. Call Stop on shutdown.
func NewNode(cfg NodeConfig) *Node {
	if cfg.Replicas > len(cfg.Members)-1 {
		cfg.Replicas = len(cfg.Members) - 1
	}
	if cfg.Replicas < 0 {
		cfg.Replicas = 0
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	n := &Node{
		cfg:  cfg,
		repl: make(chan replJob, replQueueLen),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	var peers []string
	for _, m := range cfg.Members {
		if m != cfg.Self {
			peers = append(peers, m)
		}
	}
	n.det = NewDetector(peers, cfg.Probe)
	n.det.Start()
	go n.replLoop()
	return n
}

// Stop halts the failure detector and the replicator.
func (n *Node) Stop() {
	close(n.stop)
	n.det.Stop()
	<-n.done
}

// Detector exposes the node's failure detector (status introspection).
func (n *Node) Detector() *Detector { return n.det }

// ring builds the current routing ring: self (unless draining) plus
// every peer that is alive and not draining.
func (n *Node) ring() *Ring {
	nodes := n.det.Routable()
	if !n.draining.Load() {
		nodes = append(nodes, n.cfg.Self)
	}
	return NewRing(nodes, n.cfg.Vnodes)
}

// Route implements server.Router: the session's owner under the current
// ring, and whether that is this node. An empty ring (everything looks
// dead — e.g. a network partition isolating this node) claims the
// session locally so detection continues; the client's journal replay
// reconciles when the partition heals.
func (n *Node) Route(session string) (owner string, self bool) {
	owner = n.ring().Owner(session)
	if owner == "" {
		return n.cfg.Self, true
	}
	return owner, owner == n.cfg.Self
}

// OnCheckpoint implements server.Config.OnCheckpoint: it enqueues the
// checkpoint for asynchronous replication to the session's ring
// successors. Never blocks the session worker; on overflow the oldest
// queued job is dropped (superseded by this newer one or re-sent at the
// next checkpoint).
func (n *Node) OnCheckpoint(id string, applied uint64, data []byte) {
	if n.cfg.Replicas <= 0 {
		return
	}
	job := replJob{id: id, applied: applied, data: data}
	for {
		select {
		case n.repl <- job:
			return
		default:
		}
		select {
		case <-n.repl: // evict oldest
			n.dropped.Add(1)
		default:
		}
	}
}

// DroppedReplications reports how many replication jobs were evicted on
// queue overflow.
func (n *Node) DroppedReplications() uint64 { return n.dropped.Load() }

// OnDrain implements server.Config.OnDrain: the node stops claiming
// sessions. Peers learn via ping replies within one probe interval.
func (n *Node) OnDrain() { n.draining.Store(true) }

// replLoop pushes queued checkpoints to their replica holders.
func (n *Node) replLoop() {
	defer close(n.done)
	for {
		select {
		case <-n.stop:
			return
		case job := <-n.repl:
			n.replicate(job)
		}
	}
}

func (n *Node) replicate(job replJob) {
	targets := n.ring().Successors(job.id, n.cfg.Replicas)
	for _, addr := range targets {
		ctx, cancel := context.WithTimeout(context.Background(), 10*n.det.cfg.Timeout)
		start := time.Now()
		err := server.PutReplica(ctx, addr, job.id, job.data)
		cancel()
		if err != nil {
			n.cfg.Logger.Warn("replica push failed", "component", "cluster",
				"session", job.id, "applied", job.applied, "target", addr, "err", err)
			continue
		}
		n.cfg.Tracer.Observe(obs.StageReplicaPush, time.Since(start))
	}
}
