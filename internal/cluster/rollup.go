package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"goldilocks/internal/server"
)

// Rollup scrapes every member's Prometheus exposition over the admin
// protocol and merges them into one cluster-wide document:
//
//   - every per-node sample is re-emitted with a node="addr" label
//     injected (added to an existing label set or wrapped around a bare
//     name), so one scrape shows the whole fleet broken down by node;
//   - label-free goldilocksd_* counters and gauges are summed into
//     goldilocksd_cluster_* aggregates;
//   - goldilocksd_cluster_nodes / goldilocksd_cluster_nodes_up report
//     fleet size and how many members answered.
//
// Unreachable members are skipped (and counted out of nodes_up) rather
// than failing the scrape: a rollup that dies with its weakest node is
// useless during the exact incident it exists for.
func Rollup(ctx context.Context, members []string, timeout time.Duration) []byte {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	var b strings.Builder
	sums := make(map[string]float64)   // base goldilocksd_* name -> summed value
	sumType := make(map[string]string) // base name -> TYPE
	up := 0
	for _, addr := range members {
		cctx, cancel := context.WithTimeout(ctx, timeout)
		body, err := server.ScrapeMetrics(cctx, addr)
		cancel()
		if err != nil {
			fmt.Fprintf(&b, "# node %s unreachable: %s\n", addr, strings.ReplaceAll(err.Error(), "\n", " "))
			continue
		}
		up++
		for _, line := range strings.Split(string(body), "\n") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				rememberType(line, sumType)
				continue // per-family TYPE lines are re-emitted below
			}
			name, labels, val, ok := parseSample(line)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%s{%s} %s\n", name, injectLabel(labels, "node", addr), val)
			if labels == "" && strings.HasPrefix(name, "goldilocksd_") {
				if f, err := strconv.ParseFloat(val, 64); err == nil {
					sums["goldilocksd_cluster_"+strings.TrimPrefix(name, "goldilocksd_")] += f
				}
			}
		}
	}
	fmt.Fprintf(&b, "# TYPE goldilocksd_cluster_nodes gauge\ngoldilocksd_cluster_nodes %d\n", len(members))
	fmt.Fprintf(&b, "# TYPE goldilocksd_cluster_nodes_up gauge\ngoldilocksd_cluster_nodes_up %d\n", up)
	for _, name := range sortedNames(sums) {
		typ := sumType[strings.Replace(name, "goldilocksd_cluster_", "goldilocksd_", 1)]
		if typ == "" {
			typ = "gauge"
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n%s %s\n", name, typ, name, strconv.FormatFloat(sums[name], 'g', -1, 64))
	}
	return []byte(b.String())
}

// rememberType records `# TYPE name kind` lines for the aggregates.
func rememberType(line string, into map[string]string) {
	f := strings.Fields(line)
	if len(f) == 4 && f[1] == "TYPE" {
		into[f[2]] = f[3]
	}
}

// parseSample splits a Prometheus text sample into name, raw label body
// (without braces, "" if none) and value.
func parseSample(line string) (name, labels, val string, ok bool) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", "", "", false
	}
	key, val := line[:sp], line[sp+1:]
	if i := strings.IndexByte(key, '{'); i >= 0 {
		if !strings.HasSuffix(key, "}") {
			return "", "", "", false
		}
		return key[:i], key[i+1 : len(key)-1], val, true
	}
	return key, "", val, true
}

// injectLabel prepends k=v to a raw label body, escaping v per the
// Prometheus 0.0.4 text format.
func injectLabel(labels, k, v string) string {
	kv := k + `="` + escapeLabelValue(v) + `"`
	if labels == "" {
		return kv
	}
	return kv + "," + labels
}

// escapeLabelValue escapes a label value per the Prometheus 0.0.4 text
// format: backslash, double quote, and newline — and nothing else.
// (Go's %q escapes more — tabs, non-printables, non-ASCII — which
// corrupts values, since the exposition format is UTF-8 with only those
// three escapes defined.)
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func sortedNames(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RollupHandler serves Rollup over HTTP — mount it on a node's
// introspection mux as /cluster/metrics.
func RollupHandler(members []string, timeout time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(Rollup(r.Context(), members, timeout))
	})
}
