package cluster

import (
	"context"
	"fmt"
	"time"

	"goldilocks/internal/server"
)

// Coordinator drives cluster-wide operations from outside the fleet
// (goldilocksctl). It is stateless: every call probes the members
// fresh, so it can run from any machine that reaches the fleet.
type Coordinator struct {
	// Members is the fleet's static member list.
	Members []string
	// Replicas is K, matching the fleet's -replicas setting.
	Replicas int
	// Vnodes must match the fleet's ring geometry; 0 means
	// DefaultVnodes.
	Vnodes int
	// Timeout bounds each admin exchange. Default 5s.
	Timeout time.Duration
}

func (c *Coordinator) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 5 * time.Second
	}
	return c.Timeout
}

func (c *Coordinator) call(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, c.timeout())
}

// NodeStatus is one member's state as seen by Status.
type NodeStatus struct {
	Addr     string               `json:"addr"`
	Alive    bool                 `json:"alive"`
	Draining bool                 `json:"draining,omitempty"`
	Err      string               `json:"error,omitempty"`
	Sessions []server.SessionInfo `json:"sessions,omitempty"`
}

// Status probes every member and lists its sessions.
func (c *Coordinator) Status(ctx context.Context) []NodeStatus {
	out := make([]NodeStatus, 0, len(c.Members))
	for _, addr := range c.Members {
		st := NodeStatus{Addr: addr}
		cctx, cancel := c.call(ctx)
		info, err := server.Ping(cctx, addr)
		cancel()
		if err != nil {
			st.Err = err.Error()
			out = append(out, st)
			continue
		}
		st.Alive, st.Draining = true, info.Draining
		cctx, cancel = c.call(ctx)
		st.Sessions, err = server.Sessions(cctx, addr)
		cancel()
		if err != nil {
			st.Err = err.Error()
		}
		out = append(out, st)
	}
	return out
}

// alive returns the members that answer pings, minus any listed in
// exclude, for building the post-operation routing ring.
func (c *Coordinator) alive(ctx context.Context, exclude ...string) []string {
	skip := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		skip[e] = true
	}
	var out []string
	for _, addr := range c.Members {
		if skip[addr] {
			continue
		}
		cctx, cancel := c.call(ctx)
		info, err := server.Ping(cctx, addr)
		cancel()
		if err == nil && !info.Draining {
			out = append(out, addr)
		}
	}
	return out
}

// migrate moves one session from a source node to the owner the ring
// assigns it, then seeds the owner's successors with replicas and drops
// the source copy. The checkpoint-pull is a consistent cut (live
// sessions snapshot between batches), so no verdicts are lost.
func (c *Coordinator) migrate(ctx context.Context, ring *Ring, from, id string) error {
	owner := ring.Owner(id)
	if owner == "" {
		return fmt.Errorf("no live node to own session %q", id)
	}
	cctx, cancel := c.call(ctx)
	data, applied, err := server.PullCheckpoint(cctx, from, id)
	cancel()
	if err != nil {
		return fmt.Errorf("pulling %s from %s: %w", id, from, err)
	}
	if owner != from {
		cctx, cancel = c.call(ctx)
		_, err = server.Adopt(cctx, owner, data)
		cancel()
		if err != nil {
			return fmt.Errorf("adopting %s@%d on %s: %w", id, applied, owner, err)
		}
	}
	for _, follower := range ring.Successors(id, c.Replicas) {
		if follower == from {
			continue
		}
		cctx, cancel = c.call(ctx)
		err = server.PutReplica(cctx, follower, id, data)
		cancel()
		if err != nil {
			return fmt.Errorf("replicating %s to %s: %w", id, follower, err)
		}
	}
	if owner != from {
		cctx, cancel = c.call(ctx)
		err = server.DropSession(cctx, from, id)
		cancel()
		if err != nil {
			return fmt.Errorf("dropping %s from %s: %w", id, from, err)
		}
	}
	return nil
}

// Drain empties the named node: it tells the node to stop owning
// sessions (severing live connections, which the failover-aware clients
// ride out), then migrates every session to its new ring owner. Returns
// how many sessions moved.
func (c *Coordinator) Drain(ctx context.Context, node string) (moved int, err error) {
	cctx, cancel := c.call(ctx)
	infos, err := server.DrainNode(cctx, node)
	cancel()
	if err != nil {
		return 0, fmt.Errorf("draining %s: %w", node, err)
	}
	ring := NewRing(c.alive(ctx, node), c.Vnodes)
	if ring.Len() == 0 {
		return 0, fmt.Errorf("draining %s: no other live node to receive its %d sessions", node, len(infos))
	}
	var firstErr error
	for _, si := range infos {
		if err := c.migrate(ctx, ring, node, si.ID); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		moved++
	}
	return moved, firstErr
}

// Rebalance migrates every detached session that the current ring
// assigns to a different node than the one holding it (after membership
// changes, or to mop up after failovers). Attached sessions are left
// alone — their clients are streaming and will be routed on their next
// reconnect.
func (c *Coordinator) Rebalance(ctx context.Context) (moved int, err error) {
	live := c.alive(ctx)
	ring := NewRing(live, c.Vnodes)
	var firstErr error
	for _, addr := range live {
		cctx, cancel := c.call(ctx)
		infos, err := server.Sessions(cctx, addr)
		cancel()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("listing %s: %w", addr, err)
			}
			continue
		}
		for _, si := range infos {
			if si.Attached || ring.Owner(si.ID) == addr {
				continue
			}
			if err := c.migrate(ctx, ring, addr, si.ID); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			moved++
		}
	}
	return moved, firstErr
}
