package cluster

import (
	"strings"
	"testing"
)

// The 0.0.4 text format defines exactly three label-value escapes:
// backslash, double quote, newline. Everything else — tabs, UTF-8,
// control characters Go's %q would mangle — passes through verbatim.
func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain:7766`, `plain:7766`},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"\\\"\n", `\\\"\n`},
		{"tab\there", "tab\there"}, // NOT escaped: %q would produce \t
		{"unicode-ü", "unicode-ü"}, // NOT escaped: UTF-8 is legal raw
		{"\x01", "\x01"},           // NOT escaped: only the three above
	}
	for _, c := range cases {
		if got := escapeLabelValue(c.in); got != c.want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestInjectLabelEscapes(t *testing.T) {
	got := injectLabel("", "node", "bad\"addr\\with\nstuff")
	want := `node="bad\"addr\\with\nstuff"`
	if got != want {
		t.Fatalf("injectLabel = %s, want %s", got, want)
	}
	// Prepended to an existing label body, existing labels untouched.
	got = injectLabel(`session="s1"`, "node", `n"1`)
	if want := `node="n\"1",session="s1"`; got != want {
		t.Fatalf("injectLabel = %s, want %s", got, want)
	}
	if strings.Count(got, `\"`) != 1 {
		t.Fatalf("unexpected escape count in %s", got)
	}
}
