package cluster_test

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"goldilocks/internal/cluster"
	"goldilocks/internal/conformance"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
	"goldilocks/internal/scenarios"
	"goldilocks/internal/server"
)

// lateRouter lets a server start before its cluster node exists (the
// member list needs every listener's port, which only exists after the
// servers are up). Until set, every session is self-owned.
type lateRouter struct {
	mu    sync.Mutex
	inner server.Router
}

func (l *lateRouter) set(r server.Router) {
	l.mu.Lock()
	l.inner = r
	l.mu.Unlock()
}

func (l *lateRouter) Route(session string) (string, bool) {
	l.mu.Lock()
	r := l.inner
	l.mu.Unlock()
	if r == nil {
		return "", true
	}
	return r.Route(session)
}

// lateHooks forwards the server's checkpoint/drain hooks to a node set
// after construction.
type lateHooks struct {
	mu   sync.Mutex
	node *cluster.Node
}

func (l *lateHooks) set(n *cluster.Node) {
	l.mu.Lock()
	l.node = n
	l.mu.Unlock()
}

func (l *lateHooks) get() *cluster.Node {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.node
}

func (l *lateHooks) onCheckpoint(id string, applied uint64, data []byte) {
	if n := l.get(); n != nil {
		n.OnCheckpoint(id, applied, data)
	}
}

func (l *lateHooks) onDrain() {
	if n := l.get(); n != nil {
		n.OnDrain()
	}
}

// fastProbe converges in a few hundred milliseconds so the tests don't
// crawl.
var fastProbe = cluster.ProbeConfig{
	Interval:     50 * time.Millisecond,
	Timeout:      250 * time.Millisecond,
	SuspectAfter: 2,
}

// testFleet is an in-process cluster of n goldilocksd servers wired to
// their nodes.
type testFleet struct {
	srvs  []*server.Server
	nodes []*cluster.Node
	addrs []string
}

func startFleet(t *testing.T, n, replicas, ckptEvery int) *testFleet {
	t.Helper()
	f := &testFleet{}
	var routers []*lateRouter
	var hooks []*lateHooks
	for i := 0; i < n; i++ {
		lr, hk := &lateRouter{}, &lateHooks{}
		dir := t.TempDir()
		srv, err := server.New("127.0.0.1:0", server.Config{
			Queue:           16,
			Batch:           4,
			CheckpointDir:   dir,
			ReplicaDir:      filepath.Join(dir, "replicas"),
			CheckpointEvery: ckptEvery,
			Registry:        obs.NewRegistry(),
			Router:          lr,
			OnCheckpoint:    hk.onCheckpoint,
			OnDrain:         hk.onDrain,
		})
		if err != nil {
			t.Fatalf("starting server %d: %v", i, err)
		}
		f.srvs = append(f.srvs, srv)
		f.addrs = append(f.addrs, srv.Addr())
		routers, hooks = append(routers, lr), append(hooks, hk)
	}
	for i := 0; i < n; i++ {
		node := cluster.NewNode(cluster.NodeConfig{
			Self:     f.addrs[i],
			Members:  f.addrs,
			Replicas: replicas,
			Probe:    fastProbe,
		})
		f.nodes = append(f.nodes, node)
		routers[i].set(node)
		hooks[i].set(node)
	}
	t.Cleanup(func() {
		for _, node := range f.nodes {
			node.Stop()
		}
		for _, srv := range f.srvs {
			srv.Close() // no-op for killed members
		}
	})
	return f
}

// checkSession compares one finished fleet session against the
// executable specification.
func checkSession(t *testing.T, name string, tr *event.Trace, c *server.Client, ack server.Ack) {
	t.Helper()
	backend := func(*event.Trace) (conformance.BackendResult, error) {
		res := conformance.BackendResult{Races: c.Races()}
		if len(ack.RuleFires) == obs.NumRules+1 {
			copy(res.RuleFires[:], ack.RuleFires)
			res.HasRuleFires = true
		}
		return res, nil
	}
	if div := conformance.CheckBackend("cluster", backend, tr); div != nil {
		t.Errorf("%s (failovers=%d): %v", name, c.Failovers(), div)
	}
}

// TestClusterFailoverConvergence is the in-process chaos drill: stream
// half of every Section 2 scenario into a 3-node fleet, hard-kill the
// member owning the most sessions, finish streaming through client
// failover, and require every session to converge to exactly the
// specification's verdicts and rule fires — with zero caller-visible
// errors and at least one real failover.
func TestClusterFailoverConvergence(t *testing.T) {
	f := startFleet(t, 3, 2, 4)
	cfg := server.DialConfig{BaseDelay: 20 * time.Millisecond, FailoverTimeout: 30 * time.Second}
	ctx := context.Background()

	type run struct {
		name    string
		tr      *event.Trace
		c       *server.Client
		session string
	}
	var runs []run
	for i, sc := range scenarios.All() {
		session := fmt.Sprintf("failover-%d", i)
		// Alternate wire formats so the kill lands on binary-stream and
		// line-JSON sessions alike: failover re-negotiates per connection,
		// and both codecs must migrate a SIGKILLed stream mid-flight.
		runCfg := cfg
		runCfg.ForceJSON = i%2 == 1
		c, err := server.DialFleet(ctx, f.addrs, session, runCfg)
		if err != nil {
			t.Fatalf("%s: dialing fleet: %v", sc.Name, err)
		}
		if c.Binary() == runCfg.ForceJSON {
			t.Fatalf("%s: negotiated binary=%v with ForceJSON=%v; drill is not mixing formats",
				sc.Name, c.Binary(), runCfg.ForceJSON)
		}
		runs = append(runs, run{name: sc.Name, tr: sc.Trace, c: c, session: session})
		for j := 0; j < sc.Trace.Len()/2; j++ {
			if err := c.Send(sc.Trace.At(j)); err != nil {
				t.Fatalf("%s: streaming first half: %v", sc.Name, err)
			}
		}
		if _, err := c.Flush(); err != nil {
			t.Fatalf("%s: flushing first half: %v", sc.Name, err)
		}
	}

	// Kill the member owning the most sessions, so the drill is
	// guaranteed to exercise failover.
	ring := cluster.NewRing(f.addrs, 0)
	counts := make(map[string]int)
	for _, r := range runs {
		counts[ring.Owner(r.session)]++
	}
	victim := 0
	for i, addr := range f.addrs {
		if counts[addr] > counts[f.addrs[victim]] {
			victim = i
		}
	}
	t.Logf("killing %s (owns %d of %d sessions)", f.addrs[victim], counts[f.addrs[victim]], len(runs))
	f.srvs[victim].Kill()
	f.nodes[victim].Stop()
	f.nodes[victim] = cluster.NewNode(cluster.NodeConfig{ // inert replacement so Cleanup's Stop is safe
		Self: f.addrs[victim], Members: []string{f.addrs[victim]}, Probe: fastProbe,
	})

	failovers := 0
	for _, r := range runs {
		for j := r.tr.Len() / 2; j < r.tr.Len(); j++ {
			if err := r.c.Send(r.tr.At(j)); err != nil {
				t.Fatalf("%s: streaming second half: %v", r.name, err)
			}
		}
		ack, err := r.c.Close()
		if err != nil {
			t.Fatalf("%s: closing: %v", r.name, err)
		}
		failovers += r.c.Failovers()
		checkSession(t, r.name, r.tr, r.c, ack)
	}
	if failovers == 0 {
		t.Fatal("no client failed over; the kill exercised nothing")
	}
	t.Logf("%d sessions converged with %d failovers", len(runs), failovers)
}

// TestClusterDrainMigration: finish sessions on a 3-node fleet, drain
// one member via the coordinator, and require (a) the drained node to
// be empty, (b) every migrated session to resume at its full applied
// count from its new owner.
func TestClusterDrainMigration(t *testing.T) {
	f := startFleet(t, 3, 1, 4)
	cfg := server.DialConfig{BaseDelay: 20 * time.Millisecond, FailoverTimeout: 15 * time.Second}
	ctx := context.Background()

	applied := make(map[string]uint64)
	traces := scenarios.All()[:4]
	for i, sc := range traces {
		session := fmt.Sprintf("drain-%d", i)
		c, err := server.DialFleet(ctx, f.addrs, session, cfg)
		if err != nil {
			t.Fatalf("%s: dialing: %v", sc.Name, err)
		}
		for j := 0; j < sc.Trace.Len(); j++ {
			if err := c.Send(sc.Trace.At(j)); err != nil {
				t.Fatalf("%s: send: %v", sc.Name, err)
			}
		}
		ack, err := c.Close()
		if err != nil {
			t.Fatalf("%s: close: %v", sc.Name, err)
		}
		applied[session] = ack.Applied
	}

	// Drain whichever member holds at least one session.
	co := &cluster.Coordinator{Members: f.addrs, Replicas: 1, Timeout: 5 * time.Second}
	victim := ""
	for _, st := range co.Status(ctx) {
		if len(st.Sessions) > 0 {
			victim = st.Addr
			break
		}
	}
	if victim == "" {
		t.Fatal("no member holds any session")
	}
	moved, err := co.Drain(ctx, victim)
	if err != nil {
		t.Fatalf("draining %s: %v", victim, err)
	}
	if moved == 0 {
		t.Fatalf("drain of %s moved no sessions", victim)
	}

	for _, st := range co.Status(ctx) {
		if st.Addr == victim && len(st.Sessions) > 0 {
			t.Errorf("drained node %s still holds %d sessions", victim, len(st.Sessions))
		}
	}

	// Every session must resume, at full progress, from a surviving node.
	for session, want := range applied {
		c, err := server.DialFleet(ctx, f.addrs, session, cfg)
		if err != nil {
			t.Fatalf("re-dialing %s: %v", session, err)
		}
		if !c.Resumed() || c.Next() != want {
			t.Errorf("%s: resumed=%v next=%d, want resumed at %d", session, c.Resumed(), c.Next(), want)
		}
		c.Abandon()
	}
}

// TestRollup: the cluster metrics rollup labels every per-node sample,
// sums the label-free goldilocksd_* families, and survives unreachable
// members.
func TestRollup(t *testing.T) {
	f := startFleet(t, 2, 0, 0)
	members := append(append([]string(nil), f.addrs...), "127.0.0.1:1") // one dead member

	// Give each node one session it owns, so the per-node samples and
	// the summed counters are both non-zero.
	ring := cluster.NewRing(f.addrs, 0)
	sc := scenarios.All()[0]
	for _, addr := range f.addrs {
		session := ""
		for i := 0; session == "" && i < 10000; i++ {
			if s := fmt.Sprintf("rollup-%d", i); ring.Owner(s) == addr {
				session = s
			}
		}
		if session == "" {
			t.Fatalf("no session id hashes to %s", addr)
		}
		if _, _, err := server.StreamTrace(addr, session, sc.Trace); err != nil {
			t.Fatalf("seeding node %s: %v", addr, err)
		}
	}

	out := string(cluster.Rollup(context.Background(), members, 2*time.Second))
	for _, want := range []string{
		fmt.Sprintf(`goldilocksd_sessions_total{node=%q} 1`, f.addrs[0]),
		fmt.Sprintf(`goldilocksd_sessions_total{node=%q} 1`, f.addrs[1]),
		"goldilocksd_cluster_sessions_total 2",
		"goldilocksd_cluster_nodes 3",
		"goldilocksd_cluster_nodes_up 2",
		"# node 127.0.0.1:1 unreachable",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rollup missing %q\n---\n%s", want, out)
		}
	}
}
