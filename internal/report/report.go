// Package report holds the structured failure-report types shared by
// the whole pipeline. It is a leaf package — it imports nothing from
// this repository — so that low-level packages (internal/event's trace
// readers, for example) can return *report.Report without importing
// internal/resilience, which itself depends on internal/event.
//
// internal/resilience re-exports every name here via type aliases, so
// resilience.Report and report.Report are the same type; callers keep
// using the resilience names.
package report

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind discriminates structured failure reports.
type Kind uint8

const (
	// Deadlock: every live thread of the deterministic scheduler is
	// blocked.
	Deadlock Kind = iota
	// Timeout: a wall-clock budget expired (systematic exploration).
	Timeout
	// Corruption: persistent state (a checkpoint, a replica, a trace
	// stream record) failed its integrity checks and was quarantined
	// instead of trusted.
	Corruption
)

func (k Kind) String() string {
	switch k {
	case Timeout:
		return "timeout"
	case Corruption:
		return "corruption"
	}
	return "deadlock"
}

// MarshalJSON renders the kind by name, not ordinal, so exported
// reports stay readable and stable across re-orderings of the enum.
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// ThreadState describes one blocked thread in a Report. The JSON tags
// shape the -stats-json / introspection exports.
type ThreadState struct {
	Thread string   `json:"thread"`         // thread id, e.g. "T2"
	Held   []string `json:"held,omitempty"` // monitors the thread holds, e.g. ["o3", "o7"]
}

// Report is a structured failure report: what raw-string panics used to
// carry, now machine-readable and recoverable. It implements error.
type Report struct {
	Kind    Kind          `json:"kind"`
	Blocked []ThreadState `json:"blocked,omitempty"` // blocked threads and the locks they hold
	Elapsed time.Duration `json:"elapsed_ns"`        // wall-clock time since the run started
	Detail  string        `json:"detail,omitempty"`  // free-form context (e.g. schedules explored)
}

func (r *Report) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "resilience: %v after %v", r.Kind, r.Elapsed.Round(time.Millisecond))
	if len(r.Blocked) > 0 {
		b.WriteString(" — blocked:")
		for _, ts := range r.Blocked {
			b.WriteString(" ")
			b.WriteString(ts.Thread)
			if len(ts.Held) > 0 {
				held := append([]string(nil), ts.Held...)
				sort.Strings(held)
				fmt.Fprintf(&b, "(holds %s)", strings.Join(held, ","))
			}
		}
	}
	if r.Detail != "" {
		b.WriteString(" — ")
		b.WriteString(r.Detail)
	}
	return b.String()
}
