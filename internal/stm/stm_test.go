package stm_test

import (
	"sync"
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/jrt"
	"goldilocks/internal/stm"
)

func newRuntime(seed int64, policy jrt.RacePolicy) *jrt.Runtime {
	return jrt.NewRuntime(jrt.Config{
		Detector: core.New(),
		Policy:   policy,
		Mode:     jrt.Deterministic,
		Seed:     seed,
	})
}

// recordingDetector wraps an engine and records commit actions.
type recordingDetector struct {
	*core.Engine
	mu      sync.Mutex
	commits []event.Action
}

func (d *recordingDetector) Commit(t event.Tid, reads, writes []event.Variable) []detect.Race {
	d.mu.Lock()
	d.commits = append(d.commits, event.Commit(t, reads, writes))
	d.mu.Unlock()
	return d.Engine.Commit(t, reads, writes)
}

func TestAtomicReadWrite(t *testing.T) {
	rt := newRuntime(1, jrt.Throw)
	tm := stm.New()
	rt.Run(func(th *jrt.Thread) {
		c := rt.DefineClass("Acct", jrt.FieldDecl{Name: "bal"})
		a := th.New(c)
		th.SetField(a, "bal", 100)
		err := tm.Atomic(th, func(tx *stm.Tx) {
			n, _ := tx.GetField(a, "bal").(int)
			tx.SetField(a, "bal", n-30)
		})
		if err != nil {
			t.Fatalf("Atomic: %v", err)
		}
		if n, _ := th.GetField(a, "bal").(int); n != 70 {
			t.Errorf("bal = %d, want 70", n)
		}
	})
	// Same-thread mixing of plain and transactional accesses is ordered
	// by program order: no race.
	if rs := rt.Races(); len(rs) != 0 {
		t.Errorf("unexpected races: %v", rs)
	}
	if c, a := tm.Stats(); c != 1 || a != 0 {
		t.Errorf("commits=%d aborts=%d", c, a)
	}
}

func TestCommitReportsReadWriteSets(t *testing.T) {
	det := &recordingDetector{Engine: core.New()}
	rt := jrt.NewRuntime(jrt.Config{Detector: det, Mode: jrt.Deterministic, Seed: 1})
	tm := stm.New()
	var av, bv event.Variable
	rt.Run(func(th *jrt.Thread) {
		c := rt.DefineClass("Acct", jrt.FieldDecl{Name: "bal"})
		a, b := th.New(c), th.New(c)
		th.SetField(a, "bal", 10)
		th.SetField(b, "bal", 20)
		av = a.Variable(c.MustFieldID("bal"))
		bv = b.Variable(c.MustFieldID("bal"))
		tm.Atomic(th, func(tx *stm.Tx) {
			n, _ := tx.GetField(a, "bal").(int) // a.bal: read then written -> write set
			tx.SetField(a, "bal", n-5)
			tx.GetField(b, "bal") // b.bal: pure read
		})
	})
	if len(det.commits) != 1 {
		t.Fatalf("commits seen = %d", len(det.commits))
	}
	cm := det.commits[0]
	if len(cm.Writes) != 1 || cm.Writes[0] != av {
		t.Errorf("write set = %v, want [%v]", cm.Writes, av)
	}
	if len(cm.Reads) != 1 || cm.Reads[0] != bv {
		t.Errorf("read set = %v, want [%v]", cm.Reads, bv)
	}
}

func TestAbortRollsBack(t *testing.T) {
	rt := newRuntime(1, jrt.Throw)
	tm := stm.New()
	rt.Run(func(th *jrt.Thread) {
		c := rt.DefineClass("Acct", jrt.FieldDecl{Name: "bal"})
		a := th.New(c)
		th.SetField(a, "bal", 100)
		err := tm.Atomic(th, func(tx *stm.Tx) {
			tx.SetField(a, "bal", 0)
			tx.Abort()
		})
		if err != stm.ErrAborted {
			t.Fatalf("err = %v, want ErrAborted", err)
		}
		if n, _ := th.GetField(a, "bal").(int); n != 100 {
			t.Errorf("bal = %d after abort, want 100", n)
		}
	})
}

// TestTransferInvariant: concurrent transactional transfers preserve the
// total. This is the serializability check.
func TestTransferInvariant(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rt := newRuntime(seed, jrt.Throw)
		tm := stm.New()
		rt.Run(func(th *jrt.Thread) {
			c := rt.DefineClass("Acct", jrt.FieldDecl{Name: "bal"})
			a, b := th.New(c), th.New(c)
			th.SetField(a, "bal", 500)
			th.SetField(b, "bal", 500)
			done := jrt.NewLatch(th, 4)
			for w := 0; w < 4; w++ {
				w := w
				th.Spawn(func(u *jrt.Thread) {
					for i := 0; i < 10; i++ {
						amt := (w + 1) * (i + 1) % 7
						err := tm.Atomic(u, func(tx *stm.Tx) {
							x, _ := tx.GetField(a, "bal").(int)
							y, _ := tx.GetField(b, "bal").(int)
							tx.SetField(a, "bal", x-amt)
							tx.SetField(b, "bal", y+amt)
						})
						if err != nil {
							t.Errorf("seed %d: Atomic: %v", seed, err)
						}
					}
					done.CountDown(u)
				})
			}
			done.Await(th)
			var total int
			tm.Atomic(th, func(tx *stm.Tx) {
				x, _ := tx.GetField(a, "bal").(int)
				y, _ := tx.GetField(b, "bal").(int)
				total = x + y
			})
			if total != 1000 {
				t.Errorf("seed %d: total = %d, want 1000", seed, total)
			}
		})
		if rs := rt.Races(); len(rs) != 0 {
			t.Fatalf("seed %d: transactional transfers raced: %v", seed, rs)
		}
	}
}

// TestExample4MixedRace reproduces Example 4 on the real runtime: a
// transaction transfers between accounts while another thread uses the
// object monitor; the monitor is not the transaction's synchronization,
// so the detector must throw.
func TestExample4MixedRace(t *testing.T) {
	raced := 0
	const seeds = 20
	for seed := int64(0); seed < seeds; seed++ {
		rt := newRuntime(seed, jrt.Throw)
		tm := stm.New()
		rt.Run(func(th *jrt.Thread) {
			c := rt.DefineClass("Acct", jrt.FieldDecl{Name: "bal"})
			savings, checking := th.New(c), th.New(c)
			th.SetField(savings, "bal", 100)
			th.SetField(checking, "bal", 100)
			u := th.Spawn(func(u *jrt.Thread) {
				// synchronized withdraw(42)
				u.Try(func() {
					u.Synchronized(checking, func() {
						n, _ := u.GetField(checking, "bal").(int)
						u.SetField(checking, "bal", n-42)
					})
				})
			})
			th.Try(func() {
				tm.Atomic(th, func(tx *stm.Tx) {
					x, _ := tx.GetField(savings, "bal").(int)
					y, _ := tx.GetField(checking, "bal").(int)
					tx.SetField(savings, "bal", x-42)
					tx.SetField(checking, "bal", y+42)
				})
			})
			th.Join(u)
		})
		if len(rt.Races()) > 0 {
			raced++
		}
	}
	if raced != seeds {
		t.Errorf("mixed monitor/transaction race detected in %d/%d runs; the race exists in every interleaving", raced, seeds)
	}
}

// TestExample3LinkedList reproduces Example 3 end to end: thread-local
// init, transactional insert, transactional sweep, transactional remove,
// then plain post-removal mutation — race-free in every interleaving.
func TestExample3LinkedList(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rt := newRuntime(seed, jrt.Throw)
		tm := stm.New()
		rt.Run(func(th *jrt.Thread) {
			fooC := rt.DefineClass("Foo", jrt.FieldDecl{Name: "data"}, jrt.FieldDecl{Name: "nxt"})
			listC := rt.DefineClass("List", jrt.FieldDecl{Name: "head"})
			list := th.New(listC)
			tm.Atomic(th, func(tx *stm.Tx) { tx.SetField(list, "head", nil) })

			t1 := th.Spawn(func(u *jrt.Thread) {
				foo := u.New(fooC)
				u.SetField(foo, "data", 42) // thread-local init
				tm.Atomic(u, func(tx *stm.Tx) {
					tx.SetField(foo, "nxt", tx.GetField(list, "head"))
					tx.SetField(list, "head", foo)
				})
			})
			th.Join(t1) // ensure the element is in before the sweep

			t2 := th.Spawn(func(u *jrt.Thread) {
				tm.Atomic(u, func(tx *stm.Tx) {
					iter := tx.GetField(list, "head")
					for iter != nil {
						o := iter.(*jrt.Object)
						tx.SetField(o, "data", 0)
						iter = tx.GetField(o, "nxt")
					}
				})
			})
			t3 := th.Spawn(func(u *jrt.Thread) {
				var removed *jrt.Object
				tm.Atomic(u, func(tx *stm.Tx) {
					h := tx.GetField(list, "head")
					if h == nil {
						return
					}
					o := h.(*jrt.Object)
					tx.SetField(list, "head", tx.GetField(o, "nxt"))
					removed = o
				})
				if removed != nil {
					// Now local to t3: plain increment.
					n, _ := u.GetField(removed, "data").(int)
					u.SetField(removed, "data", n+1)
				}
			})
			th.Join(t2)
			th.Join(t3)
		})
		if rs := rt.Races(); len(rs) != 0 {
			t.Fatalf("seed %d: Example 3 raced: %v", seed, rs)
		}
	}
}

// TestContentionRetries: transactions colliding on the same object abort
// and retry rather than deadlock, in both scheduler modes.
func TestContentionRetries(t *testing.T) {
	modes := map[string]jrt.Config{
		"det":  {Detector: core.New(), Mode: jrt.Deterministic, Seed: 11},
		"free": {Detector: core.New(), Mode: jrt.Free},
	}
	for name, cfg := range modes {
		t.Run(name, func(t *testing.T) {
			rt := jrt.NewRuntime(cfg)
			tm := stm.New()
			rt.Run(func(th *jrt.Thread) {
				c := rt.DefineClass("Acct", jrt.FieldDecl{Name: "bal"})
				a := th.New(c)
				th.SetField(a, "bal", 0)
				done := jrt.NewLatch(th, 6)
				for w := 0; w < 6; w++ {
					th.Spawn(func(u *jrt.Thread) {
						for i := 0; i < 20; i++ {
							tm.Atomic(u, func(tx *stm.Tx) {
								n, _ := tx.GetField(a, "bal").(int)
								tx.SetField(a, "bal", n+1)
							})
						}
						done.CountDown(u)
					})
				}
				done.Await(th)
				var n int
				tm.Atomic(th, func(tx *stm.Tx) { n, _ = tx.GetField(a, "bal").(int) })
				if n != 120 {
					t.Errorf("bal = %d, want 120", n)
				}
			})
			if rs := rt.Races(); len(rs) != 0 {
				t.Fatalf("transactional counter raced: %v", rs)
			}
		})
	}
}

// TestRollbackOnDataRace: a DataRaceException at the commit point leaves
// no partial effects.
func TestRollbackOnDataRace(t *testing.T) {
	sawRaceWithIntactState := false
	for seed := int64(0); seed < 30; seed++ {
		rt := newRuntime(seed, jrt.Throw)
		tm := stm.New()
		rt.Run(func(th *jrt.Thread) {
			c := rt.DefineClass("D", jrt.FieldDecl{Name: "v"})
			o := th.New(c)
			th.SetField(o, "v", 7)
			u := th.Spawn(func(u *jrt.Thread) {
				u.Try(func() { u.SetField(o, "v", 8) }) // plain racy write
			})
			drx := th.Try(func() {
				tm.Atomic(th, func(tx *stm.Tx) {
					tx.SetField(o, "v", 9)
				})
			})
			th.Join(u)
			if drx != nil {
				// The transaction rolled back: its write (9) must not be
				// visible.
				if n, _ := th.GetUnchecked(o, c.MustFieldID("v")).(int); n != 9 {
					sawRaceWithIntactState = true
				} else {
					t.Errorf("seed %d: aborted transaction's write visible", seed)
				}
			}
		})
	}
	if !sawRaceWithIntactState {
		t.Error("no seed produced a commit-point DataRaceException; rollback path untested")
	}
}

func TestTxArrayAccessAndBounds(t *testing.T) {
	rt := newRuntime(1, jrt.Throw)
	tm := stm.New()
	rt.Run(func(th *jrt.Thread) {
		arr := th.NewArray(3)
		err := tm.Atomic(th, func(tx *stm.Tx) {
			tx.Store(arr, 0, 10)
			tx.Store(arr, 2, 30)
			v, _ := tx.Load(arr, 0).(int)
			tx.Store(arr, 1, v+10)
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range []int{10, 20, 30} {
			if got := th.LoadUnchecked(arr, i); got != want {
				t.Errorf("arr[%d] = %v, want %d", i, got, want)
			}
		}
		// Out-of-bounds inside a transaction panics with the runtime's
		// bounds error and rolls back held locks.
		func() {
			defer func() {
				if _, ok := recover().(*jrt.IndexOutOfBounds); !ok {
					t.Error("transactional OOB did not raise IndexOutOfBounds")
				}
			}()
			tm.Atomic(th, func(tx *stm.Tx) {
				tx.Load(arr, 99)
			})
		}()
		// The internal locks were released by the rollback: a new
		// transaction on the same array succeeds.
		if err := tm.Atomic(th, func(tx *stm.Tx) { tx.Store(arr, 0, 1) }); err != nil {
			t.Fatalf("array lock leaked by panicking transaction: %v", err)
		}
	})
}

func TestTxReadYourOwnWrites(t *testing.T) {
	rt := newRuntime(2, jrt.Throw)
	tm := stm.New()
	rt.Run(func(th *jrt.Thread) {
		c := rt.DefineClass("Acct", jrt.FieldDecl{Name: "bal"})
		a := th.New(c)
		th.SetField(a, "bal", 5)
		var seen []int
		tm.Atomic(th, func(tx *stm.Tx) {
			n1, _ := tx.GetField(a, "bal").(int)
			tx.SetField(a, "bal", n1+1)
			n2, _ := tx.GetField(a, "bal").(int) // must see the buffered write
			tx.SetField(a, "bal", n2+1)
			seen = append(seen, n1, n2)
		})
		if len(seen) != 2 || seen[0] != 5 || seen[1] != 6 {
			t.Errorf("reads saw %v, want [5 6]", seen)
		}
		if n, _ := th.GetField(a, "bal").(int); n != 7 {
			t.Errorf("bal = %d, want 7", n)
		}
	})
}

func TestTxPureReadCommitsEmptyWriteSet(t *testing.T) {
	det := &recordingDetector{Engine: core.New()}
	rt := jrt.NewRuntime(jrt.Config{Detector: det, Mode: jrt.Deterministic, Seed: 1})
	tm := stm.New()
	rt.Run(func(th *jrt.Thread) {
		c := rt.DefineClass("Acct", jrt.FieldDecl{Name: "bal"})
		a := th.New(c)
		th.SetField(a, "bal", 1)
		tm.Atomic(th, func(tx *stm.Tx) { tx.GetField(a, "bal") })
	})
	if len(det.commits) != 1 {
		t.Fatalf("commits = %d", len(det.commits))
	}
	if len(det.commits[0].Writes) != 0 || len(det.commits[0].Reads) != 1 {
		t.Errorf("commit sets: R=%v W=%v", det.commits[0].Reads, det.commits[0].Writes)
	}
}
