package stm_test

import (
	"errors"
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/jrt"
	"goldilocks/internal/resilience"
	"goldilocks/internal/stm"
)

// TestBackoffDeadlockReturnsReport pins the contention-backoff error
// path: a transaction holds an internal lock while blocked on a channel
// that nobody serves, so the competing transaction's backoff wait can
// never be satisfied and the deterministic scheduler declares deadlock.
// Atomic must return the structured report as an error — not let the
// panic unwind through the caller — and the runtime must still account
// the failure.
func TestBackoffDeadlockReturnsReport(t *testing.T) {
	rt := newRuntime(3, jrt.Throw)
	tm := stm.New()
	var atomicErr error
	rt.Run(func(th *jrt.Thread) {
		c := rt.DefineClass("Acct", jrt.FieldDecl{Name: "bal"})
		fc := rt.DefineClass("Flag", jrt.FieldDecl{Name: "ready", Volatile: true})
		a, flag := th.New(c), th.New(fc)
		th.SetField(a, "bal", 1)
		ch := th.NewChan(0)
		th.Spawn(func(u *jrt.Thread) {
			// Holds a's internal lock, announces it, then parks forever:
			// the recv can never complete, so the lock is never released.
			tm.Atomic(u, func(tx *stm.Tx) {
				tx.SetField(a, "bal", 2)
				u.SetVolatile(flag, fc.MustFieldID("ready"), 1)
				u.Recv(ch)
			})
		})
		// Wait until the lock is provably held so the contention (and the
		// doomed backoff) happens in every interleaving.
		th.AwaitVolatile(flag, fc.MustFieldID("ready"), func(v jrt.Value) bool { n, _ := v.(int); return n == 1 })
		atomicErr = tm.Atomic(th, func(tx *stm.Tx) {
			tx.SetField(a, "bal", 3)
		})
	})
	if atomicErr == nil {
		t.Fatal("Atomic returned nil; want a deadlock report error")
	}
	var rep *resilience.Report
	if !errors.As(atomicErr, &rep) {
		t.Fatalf("Atomic error %T not a *resilience.Report: %v", atomicErr, atomicErr)
	}
	if rep.Kind != resilience.Deadlock {
		t.Errorf("report kind = %v, want Deadlock", rep.Kind)
	}
	if len(rep.Blocked) == 0 {
		t.Error("report carries no blocked threads")
	}
	if rt.Failure() == nil {
		t.Error("Runtime.Failure() is nil after stm-mediated deadlock")
	}
	if _, aborts := tm.Stats(); aborts == 0 {
		t.Error("contention that forced the backoff was not counted as an abort")
	}
}

// TestBodyDeadlockReturnsReport pins the in-attempt error path (run's
// recover, not backoff's): the transaction body itself blocks forever
// while holding internal locks. The report must come back as Atomic's
// error with the transaction rolled back, and a later transaction on
// the same object must find the internal lock released.
func TestBodyDeadlockReturnsReport(t *testing.T) {
	rt := newRuntime(5, jrt.Throw)
	tm := stm.New()
	var atomicErr error
	rt.Run(func(th *jrt.Thread) {
		c := rt.DefineClass("Acct", jrt.FieldDecl{Name: "bal"})
		a := th.New(c)
		th.SetField(a, "bal", 10)
		ch := th.NewChan(0)
		atomicErr = tm.Atomic(th, func(tx *stm.Tx) {
			tx.SetField(a, "bal", 99)
			th.Recv(ch) // no sender exists: scheduler deadlock
		})
		// The scheduler is dead but the thread keeps unwinding
		// unscheduled; rollback must have released a's internal lock and
		// discarded the buffered write.
		if n, _ := th.GetUnchecked(a, c.MustFieldID("bal")).(int); n != 10 {
			t.Errorf("bal = %d after rolled-back deadlocked tx, want 10", n)
		}
	})
	var rep *resilience.Report
	if !errors.As(atomicErr, &rep) {
		t.Fatalf("Atomic error %T not a *resilience.Report: %v", atomicErr, atomicErr)
	}
	if rep.Kind != resilience.Deadlock {
		t.Errorf("report kind = %v, want Deadlock", rep.Kind)
	}
	if rt.Failure() == nil {
		t.Error("Runtime.Failure() is nil after in-body deadlock")
	}
}

// TestTransactionChannelHandoff checks the transaction/channel
// interaction: a value initialized inside a transaction and published
// through a channel is race-free for the receiver's plain accesses —
// the commit(R,W) and the send/recv edge compose into a
// happens-before path the detector must accept in every interleaving.
func TestTransactionChannelHandoff(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rt := newRuntime(seed, jrt.Throw)
		tm := stm.New()
		rt.Run(func(th *jrt.Thread) {
			c := rt.DefineClass("Box", jrt.FieldDecl{Name: "v"})
			ch := th.NewChan(1)
			u := th.Spawn(func(u *jrt.Thread) {
				o := u.New(c)
				if err := tm.Atomic(u, func(tx *stm.Tx) {
					tx.SetField(o, "v", 41)
				}); err != nil {
					t.Errorf("seed %d: producer Atomic: %v", seed, err)
				}
				u.Send(ch, o)
			})
			v, _ := th.Recv(ch)
			o := v.(*jrt.Object)
			// Plain (non-transactional) read and write on the received
			// object: ordered by commit -> send -> recv.
			n, _ := th.GetField(o, "v").(int)
			th.SetField(o, "v", n+1)
			if m, _ := th.GetField(o, "v").(int); m != 42 {
				t.Errorf("seed %d: v = %d, want 42", seed, m)
			}
			th.Join(u)
		})
		if rs := rt.Races(); len(rs) != 0 {
			t.Fatalf("seed %d: channel handoff of transactional state raced: %v", seed, rs)
		}
	}
}

// TestTransactionRecvInBody runs the symmetric composition: the
// transaction body itself receives the object from a channel and then
// mutates it transactionally, so the channel edge is ordered before the
// commit. Race-free in every interleaving.
func TestTransactionRecvInBody(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rt := newRuntime(seed, jrt.Throw)
		tm := stm.New()
		rt.Run(func(th *jrt.Thread) {
			c := rt.DefineClass("Box", jrt.FieldDecl{Name: "v"})
			ch := th.NewChan(1)
			u := th.Spawn(func(u *jrt.Thread) {
				o := u.New(c)
				u.SetField(o, "v", 7) // thread-local init
				u.Send(ch, o)
			})
			err := tm.Atomic(th, func(tx *stm.Tx) {
				v, _ := th.Recv(ch)
				o := v.(*jrt.Object)
				n, _ := tx.GetField(o, "v").(int)
				tx.SetField(o, "v", n*6)
			})
			if err != nil {
				t.Errorf("seed %d: Atomic: %v", seed, err)
			}
			th.Join(u)
		})
		if rs := rt.Races(); len(rs) != 0 {
			t.Fatalf("seed %d: recv-in-transaction raced: %v", seed, rs)
		}
	}
}

// TestFreeModeStress hammers the transaction manager from real
// goroutines (free scheduler) so `go test -race` checks the TM's own
// internals — the lock table, stats counters, and commit path — for
// data races, while the invariant checks its serializability.
func TestFreeModeStress(t *testing.T) {
	const (
		workers = 16
		opsEach = 50
		objects = 4
	)
	rt := jrt.NewRuntime(jrt.Config{Detector: core.New(), Mode: jrt.Free})
	tm := stm.New()
	rt.Run(func(th *jrt.Thread) {
		c := rt.DefineClass("Acct", jrt.FieldDecl{Name: "bal"})
		accts := make([]*jrt.Object, objects)
		for i := range accts {
			accts[i] = th.New(c)
			th.SetField(accts[i], "bal", 1000)
		}
		done := jrt.NewLatch(th, workers)
		for w := 0; w < workers; w++ {
			w := w
			th.Spawn(func(u *jrt.Thread) {
				for i := 0; i < opsEach; i++ {
					src := accts[(w+i)%objects]
					dst := accts[(w+i+1)%objects]
					amt := (w*opsEach + i) % 9
					if err := tm.Atomic(u, func(tx *stm.Tx) {
						x, _ := tx.GetField(src, "bal").(int)
						y, _ := tx.GetField(dst, "bal").(int)
						tx.SetField(src, "bal", x-amt)
						tx.SetField(dst, "bal", y+amt)
					}); err != nil {
						t.Errorf("worker %d op %d: %v", w, i, err)
					}
				}
				done.CountDown(u)
			})
		}
		done.Await(th)
		var total int
		if err := tm.Atomic(th, func(tx *stm.Tx) {
			for _, a := range accts {
				n, _ := tx.GetField(a, "bal").(int)
				total += n
			}
		}); err != nil {
			t.Fatalf("final sweep: %v", err)
		}
		if total != objects*1000 {
			t.Errorf("total = %d, want %d", total, objects*1000)
		}
	})
	if rs := rt.Races(); len(rs) != 0 {
		t.Fatalf("transactional stress raced: %v", rs)
	}
	commits, _ := tm.Stats()
	if want := uint64(workers*opsEach + 1); commits != want {
		t.Errorf("commits = %d, want %d", commits, want)
	}
}
