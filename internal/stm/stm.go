// Package stm is a software transactional memory for the jrt runtime,
// in the style of the lock-based source-to-source translation of
// Hindman and Grossman that the paper uses for its transactional
// experiments (Section 6.1).
//
// Transactions use two-phase locking on per-object internal locks:
// every object is locked at first touch, writes are buffered, and at
// commit the buffered writes are applied and the locks released. Lock
// acquisition is try-lock with full abort and retry, so transactions
// cannot deadlock. The internal locks are runtime-invisible
// synchronization: the race detector never sees them. What it sees is
// exactly what the paper requires a transaction implementation to
// provide — a commit(R, W) action carrying the transaction's read and
// write sets at its commit point. Strong atomicity then follows from
// race-freedom: if no DataRaceException is thrown, plain accesses and
// transactions are correctly synchronized.
package stm

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"goldilocks/internal/event"
	"goldilocks/internal/jrt"
	"goldilocks/internal/resilience"
)

// ErrAborted is returned by Atomic when the body called Tx.Abort.
var ErrAborted = errors.New("stm: transaction aborted")

// retrySentinel restarts the transaction (internal contention); it
// carries the lock that was busy so the retry can wait for it instead
// of spinning into the same conflict (unthrottled retry livelocks under
// contention, and detection work lengthens lock hold times, compounding
// the problem).
type retrySentinel struct {
	busy *objLock
}

// abortSentinel implements Tx.Abort.
type abortSentinel struct{}

// TM is a transaction manager instance. One TM serves one runtime; the
// per-object internal locks live here.
type TM struct {
	mu    sync.Mutex
	locks map[event.Addr]*objLock

	// Stats.
	commits uint64
	aborts  uint64
}

type objLock struct {
	owner *Tx
}

// New creates a transaction manager.
func New() *TM {
	return &TM{locks: make(map[event.Addr]*objLock)}
}

// Stats returns (committed, aborted-and-retried) transaction counts.
func (m *TM) Stats() (commits, aborts uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commits, m.aborts
}

func (m *TM) lockFor(o event.Addr) *objLock {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.locks[o]
	if !ok {
		l = &objLock{}
		m.locks[o] = l
	}
	return l
}

// Tx is an in-flight transaction. It must only be used inside the body
// passed to Atomic, from the owning thread.
type Tx struct {
	tm *TM
	t  *jrt.Thread

	reads  map[event.Variable]bool
	writes map[event.Variable]jrt.Value
	objs   map[event.Addr]*objLock // internal locks held
	held   []event.Addr            // acquisition order (release order is reverse)
	objRef map[event.Addr]*jrt.Object
}

// Atomic runs body as a transaction: all of its reads and writes commit
// atomically, or none do. On internal lock contention the transaction
// rolls back and retries. If the body calls Tx.Abort, Atomic rolls back
// and returns ErrAborted. A DataRaceException raised at the commit point
// (the transaction conflicts with unsynchronized plain accesses) rolls
// the transaction back before propagating, so a caller that catches it
// observes no partial effects.
//
// A scheduler failure — the deterministic scheduler declaring a
// deadlock while the transaction holds its internal locks or backs off
// waiting for a conflicting one — is returned as the structured
// *resilience.Report (which implements error), with the transaction
// rolled back first. The report panic must not escape through the
// transaction machinery: callers inspect it with errors.As, and the
// run's other threads unwind through the dead scheduler unscheduled.
func (m *TM) Atomic(t *jrt.Thread, body func(tx *Tx)) error {
	for {
		tx := &Tx{
			tm:     m,
			t:      t,
			reads:  make(map[event.Variable]bool),
			writes: make(map[event.Variable]jrt.Value),
			objs:   make(map[event.Addr]*objLock),
			objRef: make(map[event.Addr]*jrt.Object),
		}
		busy, retry, err := tx.run(body)
		if retry {
			m.noteAbort()
			if busy != nil {
				// Back off until the conflicting transaction finishes. The
				// wait can itself deadlock the deterministic scheduler (the
				// conflicting transaction may be waiting on us through data
				// the detector cannot see); surface that as an error, not a
				// panic through Atomic.
				if err := m.backoff(t, busy); err != nil {
					return err
				}
			}
			continue
		}
		return err
	}
}

// backoff parks t until the conflicting transaction's lock is free,
// converting a scheduler-failure panic into the report it carries.
func (m *TM) backoff(t *jrt.Thread, busy *objLock) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if rep, ok := r.(*resilience.Report); ok {
				t.Runtime().RecordFailure(rep)
				err = rep
				return
			}
			panic(r)
		}
	}()
	t.Exec(func() bool { return busy.owner == nil })
	return nil
}

func (m *TM) noteAbort() {
	m.mu.Lock()
	m.aborts++
	m.mu.Unlock()
}

func (m *TM) noteCommit() {
	m.mu.Lock()
	m.commits++
	m.mu.Unlock()
}

// run executes one attempt of the transaction body plus commit.
func (tx *Tx) run(body func(tx *Tx)) (busy *objLock, retry bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			tx.releaseAll()
			switch sentinel := r.(type) {
			case retrySentinel:
				retry = true
				busy = sentinel.busy
			case abortSentinel:
				err = ErrAborted
			case *resilience.Report:
				// The deterministic scheduler failed (deadlock) while this
				// attempt was blocked inside acquire/commit. The run is
				// over; hand the structured report to the caller instead of
				// unwinding through Atomic. Swallowing the panic bypasses
				// the runtime's own recovery barrier, so record the failure
				// here or Runtime.Failure() would claim a clean run.
				tx.t.Runtime().RecordFailure(sentinel)
				err = sentinel
			default:
				panic(r) // includes DataRaceException from the commit point
			}
		}
	}()
	body(tx)
	tx.commit()
	return nil, false, nil
}

// Abort rolls the transaction back; Atomic returns ErrAborted.
func (tx *Tx) Abort() { panic(abortSentinel{}) }

// acquire takes the internal lock of o (first touch), aborting and
// retrying the whole transaction on contention.
func (tx *Tx) acquire(o *jrt.Object) {
	addr := o.Addr()
	if _, ok := tx.objs[addr]; ok {
		return
	}
	l := tx.tm.lockFor(addr)
	got := false
	tx.t.Exec(func() bool {
		if l.owner == nil || l.owner == tx {
			l.owner = tx
			got = true
		}
		return true // the attempt itself always completes; got records the outcome
	})
	if !got {
		panic(retrySentinel{busy: l})
	}
	tx.objs[addr] = l
	tx.held = append(tx.held, addr)
	tx.objRef[addr] = o
}

func (tx *Tx) releaseAll() {
	for i := len(tx.held) - 1; i >= 0; i-- {
		l := tx.objs[tx.held[i]]
		tx.t.Exec(func() bool {
			l.owner = nil
			return true
		})
	}
	tx.held = nil
	tx.objs = make(map[event.Addr]*objLock)
}

// Get reads data field f of o transactionally.
func (tx *Tx) Get(o *jrt.Object, f event.FieldID) jrt.Value {
	tx.acquire(o)
	v := event.Variable{Obj: o.Addr(), Field: f}
	if buf, ok := tx.writes[v]; ok {
		return buf
	}
	tx.reads[v] = true
	return tx.t.GetUnchecked(o, f)
}

// Set writes data field f of o transactionally (buffered until commit).
func (tx *Tx) Set(o *jrt.Object, f event.FieldID, val jrt.Value) {
	tx.acquire(o)
	v := event.Variable{Obj: o.Addr(), Field: f}
	tx.writes[v] = val
}

// GetField and SetField address fields by name.
func (tx *Tx) GetField(o *jrt.Object, name string) jrt.Value {
	return tx.Get(o, o.Class().MustFieldID(name))
}

// SetField writes the named field transactionally.
func (tx *Tx) SetField(o *jrt.Object, name string, v jrt.Value) {
	tx.Set(o, o.Class().MustFieldID(name), v)
}

// Load reads array element i transactionally.
func (tx *Tx) Load(o *jrt.Object, i int) jrt.Value {
	if i < 0 || i >= o.Len() {
		panic(&jrt.IndexOutOfBounds{Object: o, Index: i})
	}
	return tx.Get(o, event.FieldID(i))
}

// Store writes array element i transactionally.
func (tx *Tx) Store(o *jrt.Object, i int, v jrt.Value) {
	if i < 0 || i >= o.Len() {
		panic(&jrt.IndexOutOfBounds{Object: o, Index: i})
	}
	tx.Set(o, event.FieldID(i), v)
}

// commit is the commit point: report (R, W) to the detector, apply the
// write buffer, release the internal locks.
func (tx *Tx) commit() {
	reads := make([]event.Variable, 0, len(tx.reads))
	for v := range tx.reads {
		if _, written := tx.writes[v]; !written {
			reads = append(reads, v)
		}
	}
	writes := make([]event.Variable, 0, len(tx.writes))
	for v := range tx.writes {
		writes = append(writes, v)
	}
	// Deterministic ordering keeps detector traces reproducible.
	sortVars(reads)
	sortVars(writes)

	// The detector sees the commit before the effects become visible;
	// the internal locks are still held, so no other thread can observe
	// the window. If the commit races (mixed transactional/plain use),
	// CommitTxn throws and run's recover rolls everything back.
	tx.t.CommitTxn(reads, writes)

	for v, val := range tx.writes {
		o := tx.objRef[v.Obj]
		if o.IsArray() {
			tx.t.StoreUnchecked(o, int(v.Field), val)
		} else {
			tx.t.SetUnchecked(o, v.Field, val)
		}
	}
	tx.releaseAll()
	tx.tm.noteCommit()
}

func sortVars(vs []event.Variable) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Obj != vs[j].Obj {
			return vs[i].Obj < vs[j].Obj
		}
		return vs[i].Field < vs[j].Field
	})
}

// String renders transaction state for diagnostics.
func (tx *Tx) String() string {
	return fmt.Sprintf("tx{thread %v, %d reads, %d writes, %d locks}",
		tx.t.ID(), len(tx.reads), len(tx.writes), len(tx.held))
}
