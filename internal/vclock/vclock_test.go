package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"goldilocks/internal/event"
)

func TestBasicOps(t *testing.T) {
	v := New()
	if v.Get(1) != 0 {
		t.Error("fresh clock has nonzero component")
	}
	if v.Tick(1) != 1 || v.Tick(1) != 2 {
		t.Error("Tick did not increment")
	}
	v.Set(2, 7)
	if v.Get(2) != 7 {
		t.Error("Set/Get mismatch")
	}
	v.Set(2, 0)
	if v.Get(2) != 0 {
		t.Error("Set 0 did not clear")
	}
}

func TestJoinLessEq(t *testing.T) {
	a, b := New(), New()
	a.Set(1, 3)
	b.Set(2, 5)
	if a.LessEq(b) || b.LessEq(a) {
		t.Error("disjoint clocks should be incomparable")
	}
	if !a.Concurrent(b) {
		t.Error("disjoint clocks should be concurrent")
	}
	j := a.Copy()
	j.Join(b)
	if !a.LessEq(j) || !b.LessEq(j) {
		t.Error("join is not an upper bound")
	}
	if j.Get(1) != 3 || j.Get(2) != 5 {
		t.Error("join lost components")
	}
}

func TestCopyIndependence(t *testing.T) {
	a := New()
	a.Set(1, 1)
	c := a.Copy()
	c.Tick(1)
	if a.Get(1) != 1 {
		t.Error("Copy shares state")
	}
}

func TestString(t *testing.T) {
	a := New()
	a.Set(2, 1)
	a.Set(1, 3)
	if got := a.String(); got != "[T1:3 T2:1]" {
		t.Errorf("String() = %q", got)
	}
	if got := New().String(); got != "[]" {
		t.Errorf("empty String() = %q", got)
	}
}

func TestEpoch(t *testing.T) {
	var e Epoch
	if !e.Zero() {
		t.Error("zero epoch not Zero")
	}
	c := New()
	if !e.LessEq(c) {
		t.Error("zero epoch must precede everything")
	}
	e = Epoch{Tid: 1, Time: 2}
	if e.LessEq(c) {
		t.Error("epoch 2@T1 precedes empty clock")
	}
	c.Set(1, 2)
	if !e.LessEq(c) {
		t.Error("epoch 2@T1 should precede [T1:2]")
	}
	if e.String() != "2@T1" {
		t.Errorf("String() = %q", e.String())
	}
}

// randomVC builds a clock from fuzz input.
func randomVC(rng *rand.Rand) *VC {
	v := New()
	n := rng.Intn(5)
	for i := 0; i < n; i++ {
		v.Set(event.Tid(1+rng.Intn(4)), uint64(1+rng.Intn(8)))
	}
	return v
}

func TestQuickJoinProperties(t *testing.T) {
	// Join is a least upper bound: commutative, associative, idempotent,
	// and monotone w.r.t. LessEq.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randomVC(rng), randomVC(rng), randomVC(rng)

		ab := a.Copy()
		ab.Join(b)
		ba := b.Copy()
		ba.Join(a)
		if !ab.Equal(ba) {
			return false
		}

		abc1 := ab.Copy()
		abc1.Join(c)
		bc := b.Copy()
		bc.Join(c)
		abc2 := a.Copy()
		abc2.Join(bc)
		if !abc1.Equal(abc2) {
			return false
		}

		aa := a.Copy()
		aa.Join(a)
		if !aa.Equal(a) {
			return false
		}
		return a.LessEq(ab) && b.LessEq(ab)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLessEqPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randomVC(rng), randomVC(rng), randomVC(rng)
		// Reflexivity.
		if !a.LessEq(a) {
			return false
		}
		// Antisymmetry.
		if a.LessEq(b) && b.LessEq(a) && !a.Equal(b) {
			return false
		}
		// Transitivity.
		if a.LessEq(b) && b.LessEq(c) && !a.LessEq(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
