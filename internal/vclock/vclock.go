// Package vclock implements vector clocks (Mattern 1988), used by the
// happens-before oracle and the vector-clock race-detector baseline that
// the paper compares Goldilocks against.
package vclock

import (
	"fmt"
	"sort"
	"strings"

	"goldilocks/internal/event"
)

// VC is a vector clock: a map from thread id to logical time. The zero
// value (nil map semantics via methods on a struct) is not used; create
// clocks with New.
type VC struct {
	m map[event.Tid]uint64
}

// New returns an empty (all-zero) vector clock.
func New() *VC { return &VC{m: make(map[event.Tid]uint64)} }

// Get returns the component for thread t (zero if absent).
func (v *VC) Get(t event.Tid) uint64 { return v.m[t] }

// Set sets the component for thread t.
func (v *VC) Set(t event.Tid, n uint64) {
	if n == 0 {
		delete(v.m, t)
		return
	}
	v.m[t] = n
}

// Tick increments the component for thread t and returns the new value.
func (v *VC) Tick(t event.Tid) uint64 {
	v.m[t]++
	return v.m[t]
}

// Join sets v to the componentwise maximum of v and u.
func (v *VC) Join(u *VC) {
	for t, n := range u.m {
		if n > v.m[t] {
			v.m[t] = n
		}
	}
}

// Copy returns an independent copy of v.
func (v *VC) Copy() *VC {
	c := &VC{m: make(map[event.Tid]uint64, len(v.m))}
	for t, n := range v.m {
		c.m[t] = n
	}
	return c
}

// LessEq reports whether v happens-before-or-equals u componentwise
// (v ⊑ u).
func (v *VC) LessEq(u *VC) bool {
	for t, n := range v.m {
		if n > u.m[t] {
			return false
		}
	}
	return true
}

// Concurrent reports whether neither v ⊑ u nor u ⊑ v.
func (v *VC) Concurrent(u *VC) bool { return !v.LessEq(u) && !u.LessEq(v) }

// Equal reports componentwise equality.
func (v *VC) Equal(u *VC) bool { return v.LessEq(u) && u.LessEq(v) }

// String renders the clock deterministically, e.g. "[T1:3 T2:1]".
func (v *VC) String() string {
	parts := make([]string, 0, len(v.m))
	for t, n := range v.m {
		parts = append(parts, fmt.Sprintf("%v:%d", t, n))
	}
	sort.Strings(parts)
	return "[" + strings.Join(parts, " ") + "]"
}

// Epoch is the FastTrack-style compressed clock: a single (thread, time)
// pair. It is used by the vector-clock baseline to cheaply represent
// last-write metadata; Goldilocks itself does not need it, but the
// comparison detector benefits from the same representation tricks real
// vector-clock race detectors use.
type Epoch struct {
	Tid  event.Tid
	Time uint64
}

// Zero reports whether the epoch is the initial (never-written) epoch.
func (e Epoch) Zero() bool { return e.Time == 0 }

// LessEq reports whether the epoch happens-before-or-equals clock u: the
// single component is covered by u.
func (e Epoch) LessEq(u *VC) bool { return e.Time <= u.Get(e.Tid) }

func (e Epoch) String() string {
	if e.Zero() {
		return "⊥"
	}
	return fmt.Sprintf("%d@%v", e.Time, e.Tid)
}
