// Package scenarios encodes the motivating examples of Section 2 of the
// Goldilocks paper as event traces, with their ground-truth verdicts.
// They are shared by the detector test suites (every precise detector
// must agree with the verdicts; the Eraser-style baselines demonstrably
// do not) and by the runnable examples.
package scenarios

import "goldilocks/internal/event"

// Scenario is a named trace with its ground-truth race verdict.
type Scenario struct {
	Name string
	// Trace is a linearization of the scenario's execution.
	Trace *event.Trace
	// Racy reports whether the trace contains an extended race.
	Racy bool
	// RacePos, when Racy, is the index of the access at which a precise
	// online detector must report (the access completing the first
	// race). -1 when not racy.
	RacePos int
	// RaceVar, when Racy, is the racy variable.
	RaceVar event.Variable
}

// Object and field layout shared by the scenarios.
const (
	Globals event.Addr = 1 // holds global reference variables a, b, head

	FieldA    event.FieldID = 0 // global a
	FieldB    event.FieldID = 1 // global b
	FieldHead event.FieldID = 2 // global head

	Conn event.Addr = 5 // the ftp connection object of Example 1

	FieldClosed  event.FieldID = 0 // m_isConnectionClosed (volatile in fix)
	FieldRequest event.FieldID = 1 // m_request
	FieldWriter  event.FieldID = 2 // m_writer
	FieldReader  event.FieldID = 3 // m_reader

	IntBox event.Addr = 10 // the IntBox o of Example 2
	Foo    event.Addr = 11 // the Foo object o of Example 3

	FieldData event.FieldID = 0 // data field of IntBox / Foo / Account
	FieldNxt  event.FieldID = 1 // nxt field of Foo

	LockA event.Addr = 20 // ma of Example 2
	LockB event.Addr = 21 // mb of Example 2

	Savings  event.Addr = 30 // Example 4 accounts
	Checking event.Addr = 31
)

// Var is shorthand for a data variable.
func Var(o event.Addr, f event.FieldID) event.Variable { return event.Variable{Obj: o, Field: f} }

// FTPServer is Example 1: the run() thread (T1) services commands while
// the time-out thread (T2) closes the connection; close() nulls the
// connection fields without synchronizing with run()'s accesses, so
// run()'s next read of m_writer races.
func FTPServer() Scenario {
	b := event.NewBuilder()
	b.Alloc(1, Conn)
	// Connection setup by T1 before the time-out thread exists; the
	// fork edge orders these writes before everything T2 does.
	b.Write(1, Conn, FieldRequest)
	b.Write(1, Conn, FieldWriter)
	b.Write(1, Conn, FieldReader)
	b.Fork(1, 2)
	// T2 times the connection out: the closed flag is lock-guarded, the
	// field writes are not.
	b.Acquire(2, Conn)
	b.Write(2, Conn, FieldClosed)
	b.Release(2, Conn)
	b.Write(2, Conn, FieldRequest)
	b.Write(2, Conn, FieldWriter)
	b.Write(2, Conn, FieldReader)
	// T1's servicing loop touches m_writer: the race completes here —
	// the access a DataRaceException interrupts.
	b.Read(1, Conn, FieldWriter) // action 11
	tr := b.Trace()
	return Scenario{Name: "ftpserver", Trace: tr, Racy: true, RacePos: 11, RaceVar: Var(Conn, FieldWriter)}
}

// Ownership is Example 2 (and the Figure 6 linearization): an IntBox is
// created and initialized by T1, published under lock ma, moved from
// global a to global b by T2 (under ma then mb), and finally mutated by
// T3 under mb and, after T3 releases mb, without any lock — race-free
// throughout, because ownership is transferred hand over hand.
func Ownership() Scenario {
	b := event.NewBuilder()
	b.Alloc(1, IntBox)
	b.Write(1, IntBox, FieldData) // tmp1.data = 0: first access, LS={T1}
	b.Acquire(1, LockA)
	b.Write(1, Globals, FieldA) // a = tmp1
	b.Release(1, LockA)         // LS(o.data) grows to {T1, ma}

	b.Acquire(2, LockA) // LS grows to {T1, ma, T2}
	b.Read(2, Globals, FieldA)
	b.Acquire(2, LockB)
	b.Write(2, Globals, FieldB) // b = tmp2
	b.Release(2, LockB)         // LS grows to {T1, ma, T2, mb}
	b.Release(2, LockA)

	b.Acquire(3, LockB)           // LS grows to {T1, ma, T2, mb, T3}
	b.Write(3, IntBox, FieldData) // b.data = 2: T3 in LS, no race; LS={T3}
	b.Read(3, Globals, FieldB)    // tmp3 = b
	b.Release(3, LockB)           // LS grows to {T3, mb}
	b.Write(3, IntBox, FieldData) // tmp3.data = 3: no race; LS={T3}
	tr := b.Trace()
	return Scenario{Name: "ownership", Trace: tr, Racy: false, RacePos: -1}
}

// TxList is Example 3 (and the Figure 7 linearization): a Foo object is
// initialized while thread-local, inserted into a transactional linked
// list, mutated inside a transaction by T2, removed inside a transaction
// by T3, and finally mutated by T3 outside any transaction — race-free,
// because transactions over shared variables create happens-before
// edges.
func TxList() Scenario {
	head := Var(Globals, FieldHead)
	data := Var(Foo, FieldData)
	nxt := Var(Foo, FieldNxt)

	b := event.NewBuilder()
	b.Alloc(1, Foo)
	b.Write(1, Foo, FieldData) // t1.data = 42 while local: LS={T1}
	// T1: atomic { t1.nxt = head; head = t1 }
	b.Commit(1, []event.Variable{head}, []event.Variable{nxt, head})
	// T2: atomic { for iter = head; ...; iter = iter.nxt: iter.data = 0 }
	b.Commit(2, []event.Variable{head, nxt, data}, []event.Variable{data})
	// T3: atomic { t3 = head; head = t3.nxt }
	b.Commit(3, []event.Variable{head, nxt}, []event.Variable{head})
	// T3: t3.data++ outside any transaction.
	b.Read(3, Foo, FieldData)
	b.Write(3, Foo, FieldData)
	tr := b.Trace()
	return Scenario{Name: "txlist", Trace: tr, Racy: false, RacePos: -1}
}

// Accounts is Example 4: T1 transfers between accounts inside a
// transaction while T2 withdraws using the synchronized withdraw method.
// The transaction and the monitor do not synchronize with each other, so
// the accesses to checking.bal race; the race must be reported even
// though every access is "protected" by something.
func Accounts() Scenario {
	sav := Var(Savings, FieldData)
	chk := Var(Checking, FieldData)

	b := event.NewBuilder()
	// Both threads exist up front; the accounts are pre-existing shared
	// state written by T1 before T2 starts (via fork) so that setup does
	// not race.
	b.Alloc(1, Savings)
	b.Alloc(1, Checking)
	b.Write(1, Savings, FieldData)
	b.Write(1, Checking, FieldData)
	b.Fork(1, 2)
	// T2: synchronized withdraw on checking.
	b.Acquire(2, Checking)
	b.Read(2, Checking, FieldData)
	b.Write(2, Checking, FieldData)
	b.Release(2, Checking)
	// T1: atomic { savings.bal -= 42; checking.bal += 42 }
	b.Commit(1, []event.Variable{sav, chk}, []event.Variable{sav, chk})
	tr := b.Trace()
	return Scenario{Name: "accounts", Trace: tr, Racy: true, RacePos: 9, RaceVar: chk}
}

// All returns every scenario.
func All() []Scenario {
	return []Scenario{FTPServer(), Ownership(), TxList(), Accounts()}
}
