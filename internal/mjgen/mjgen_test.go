package mjgen_test

import (
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/hb"
	"goldilocks/internal/jrt"
	"goldilocks/internal/mj"
	"goldilocks/internal/mjgen"
)

// TestGeneratedProgramsCompile: every generated program passes the MJ
// front end and survives a printer round trip.
func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		src := mjgen.FromSeed(seed)
		prog, err := mj.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		if err := mj.Check(prog); err != nil {
			t.Fatalf("seed %d: check: %v\n%s", seed, err, src)
		}
		printed := mj.Format(prog)
		if _, err := mj.Parse(printed); err != nil {
			t.Fatalf("seed %d: reparse of printed output: %v", seed, err)
		}
	}
}

// runRecorded executes src deterministically with a recording Goldilocks
// detector and returns the live races plus the recorded linearization.
func runRecorded(t *testing.T, src string, seed int64) ([]detect.Race, *jrt.Runtime, *jrt.Recorder) {
	t.Helper()
	prog := mj.MustCheck(src)
	rec := jrt.Record(core.New())
	rt := jrt.NewRuntime(jrt.Config{
		Detector: rec,
		Policy:   jrt.Log, // keep control flow identical whether or not races occur
		Mode:     jrt.Deterministic,
		Seed:     seed,
	})
	interp, err := mj.NewInterp(prog, mj.InterpConfig{Runtime: rt})
	if err != nil {
		t.Fatal(err)
	}
	races, err := interp.Run()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	return races, rt, rec
}

// TestEndToEndLiveVsOracle is the repository's strongest integration
// property: for random concurrent MJ programs under random schedules,
// the DataRaceExceptions the live runtime raises must agree with the
// happens-before oracle evaluated on the very linearization the
// detector observed — same verdict, and the same first racy access.
func TestEndToEndLiveVsOracle(t *testing.T) {
	progRacy, progClean := 0, 0
	for seed := int64(0); seed < 120; seed++ {
		src := mjgen.FromSeed(seed)
		schedSeed := seed * 31
		live, _, rec := runRecorded(t, src, schedSeed)
		tr := rec.Trace()
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: recorded trace invalid: %v", seed, err)
		}
		oracle := hb.NewOracle(tr)
		first, racy := oracle.FirstRacePos()

		if racy != (len(live) > 0) {
			t.Fatalf("seed %d: live races %d, oracle racy %v\n%s", seed, len(live), racy, src)
		}
		if racy {
			progRacy++
			// The first live race must be the access completing the
			// oracle's first race: same variable among those racing at
			// that position.
			vars := map[string]bool{}
			for _, p := range oracle.Races() {
				if p.J == first.J {
					vars[p.Var.String()] = true
				}
			}
			if !vars[live[0].Var.String()] {
				t.Fatalf("seed %d: first live race on %v, oracle's first position races on %v",
					seed, live[0].Var, vars)
			}
			// And the spec engine on the recording agrees position-wise.
			specFirst := detect.FirstRace(core.NewSpecEngine(), tr)
			if specFirst == nil || specFirst.Pos != first.J {
				t.Fatalf("seed %d: spec on recording = %v, oracle pos %d", seed, specFirst, first.J)
			}
		} else {
			progClean++
		}
	}
	if progRacy < 15 || progClean < 15 {
		t.Errorf("degenerate generator: %d racy, %d clean of 120", progRacy, progClean)
	}
}

// TestEndToEndThrowTermination: under the Throw policy, racy generated
// programs still terminate (exceptions interrupt accesses, threads die
// gracefully, main joins what it can) and the runtime records the
// exception flow.
func TestEndToEndThrowTermination(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		src := mjgen.FromSeed(seed)
		prog := mj.MustCheck(src)
		rt := jrt.NewRuntime(jrt.Config{
			Detector: core.New(),
			Policy:   jrt.Throw,
			Mode:     jrt.Deterministic,
			Seed:     seed,
		})
		interp, err := mj.NewInterp(prog, mj.InterpConfig{Runtime: rt})
		if err != nil {
			t.Fatal(err)
		}
		races, err := interp.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// A commit can record several races but throws one exception, so
		// thrown <= recorded, and both agree on zero/nonzero.
		thrown := int(rt.Stats().RacesThrown)
		if thrown > len(races) || (len(races) > 0) != (thrown > 0) {
			t.Errorf("seed %d: %d races recorded, %d thrown", seed, len(races), thrown)
		}
		// A thrown-and-uncaught exception must have terminated its
		// thread gracefully, not vanished.
		if len(races) > 0 && len(rt.Uncaught()) == 0 {
			t.Errorf("seed %d: races thrown but none surfaced as uncaught", seed)
		}
	}
}

// TestRecorderFidelity: replaying a recording through a second fresh
// engine yields the identical race sequence the live engine produced.
func TestRecorderFidelity(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		src := mjgen.FromSeed(seed)
		live, _, rec := runRecorded(t, src, seed)
		replay := detect.RunTrace(core.New(), rec.Trace())
		if len(replay) != len(live) {
			t.Fatalf("seed %d: live %d races, replay %d", seed, len(live), len(replay))
		}
		for i := range live {
			if live[i].Var != replay[i].Var {
				t.Fatalf("seed %d: race %d differs: live %v, replay %v", seed, i, live[i].Var, replay[i].Var)
			}
		}
	}
}

// TestEndToEndFreeMode repeats the live-vs-oracle property under the
// free (real goroutine) scheduler: the recorder serializes detector
// calls, so the recording is still the exact linearization the engine
// observed, and the oracle verdict on it must match the live one. Run
// with -race to validate the runtime's own synchronization on racy MJ
// programs.
func TestEndToEndFreeMode(t *testing.T) {
	agree := 0
	for seed := int64(0); seed < 40; seed++ {
		src := mjgen.FromSeed(seed)
		prog := mj.MustCheck(src)
		rec := jrt.Record(core.New())
		rt := jrt.NewRuntime(jrt.Config{Detector: rec, Policy: jrt.Log, Mode: jrt.Free})
		interp, err := mj.NewInterp(prog, mj.InterpConfig{Runtime: rt})
		if err != nil {
			t.Fatal(err)
		}
		live, err := interp.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr := rec.Trace()
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: free-mode recording invalid: %v", seed, err)
		}
		_, racy := hb.NewOracle(tr).FirstRacePos()
		if racy != (len(live) > 0) {
			t.Fatalf("seed %d: live races %d, oracle racy %v", seed, len(live), racy)
		}
		agree++
	}
	if agree != 40 {
		t.Errorf("agreement on %d/40 free-mode runs", agree)
	}
}
