// Package mjgen generates random concurrent MJ programs for end-to-end
// property testing: a generated program is executed on the race-aware
// runtime under the deterministic scheduler with a recording detector,
// and the live DataRaceException verdicts are compared against the
// happens-before oracle's verdict on the recorded linearization. This
// closes the loop between the runtime stack (interpreter, scheduler,
// monitors, transactions) and the trace-level Theorem 1 properties.
package mjgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated programs.
type Config struct {
	// Workers is the number of spawned threads.
	Workers int
	// SharedFields is the number of int fields on the shared object.
	SharedFields int
	// Locks is the number of dedicated lock objects.
	Locks int
	// OpsPerWorker is the number of statements in each worker body.
	OpsPerWorker int
	// AtomicBias is the probability that a block is transactional.
	AtomicBias float64
	// SyncBias is the probability that a block is lock-synchronized.
	SyncBias float64
	// VolatileHandshakes adds a volatile flag used for some publication.
	VolatileHandshakes bool
}

// Default returns a configuration producing small programs mixing
// locks, transactions, volatiles, and unsynchronized accesses, so that
// roughly half of the generated programs race.
func Default() Config {
	return Config{
		Workers:            3,
		SharedFields:       3,
		Locks:              2,
		OpsPerWorker:       6,
		AtomicBias:         0.25,
		SyncBias:           0.45,
		VolatileHandshakes: true,
	}
}

// discipline shapes a whole generated program.
type discipline int

const (
	// disciplineChaotic mixes synchronization per operation (usually racy).
	disciplineChaotic discipline = iota
	// disciplineLock guards every shared access with one global lock.
	disciplineLock
	// disciplineAtomic performs every shared access transactionally.
	disciplineAtomic
	// disciplinePartition gives each worker its own field; main joins
	// every worker before its final accesses.
	disciplinePartition
)

// Generate produces an MJ source program from rng under cfg. A program-
// wide discipline is drawn first: the consistent disciplines yield
// race-free programs, the chaotic one is usually racy — so the corpus
// exercises both verdicts.
func Generate(rng *rand.Rand, cfg Config) string {
	disc := discipline(rng.Intn(4))
	var sb strings.Builder

	// Shared data class.
	sb.WriteString("class D {\n")
	for f := 0; f < cfg.SharedFields; f++ {
		fmt.Fprintf(&sb, "\tint f%d;\n", f)
	}
	if cfg.VolatileHandshakes {
		sb.WriteString("\tvolatile int flag;\n")
	}
	sb.WriteString("}\nclass L { int unused; }\n")

	// Main with workers.
	sb.WriteString("class Main {\n\tD d;\n")
	for l := 0; l < cfg.Locks; l++ {
		fmt.Fprintf(&sb, "\tL lock%d;\n", l)
	}
	for w := 0; w < cfg.Workers; w++ {
		fmt.Fprintf(&sb, "\tvoid work%d() {\n", w)
		for op := 0; op < cfg.OpsPerWorker; op++ {
			sb.WriteString(genBlock(rng, cfg, disc, w, 2, op))
		}
		sb.WriteString("\t}\n")
	}

	sb.WriteString("\tvoid main() {\n")
	sb.WriteString("\t\td = new D();\n")
	for l := 0; l < cfg.Locks; l++ {
		fmt.Fprintf(&sb, "\t\tlock%d = new L();\n", l)
	}
	for f := 0; f < cfg.SharedFields; f++ {
		fmt.Fprintf(&sb, "\t\td.f%d = %d;\n", f, f)
	}
	if cfg.VolatileHandshakes {
		sb.WriteString("\t\td.flag = 0;\n")
	}
	for w := 0; w < cfg.Workers; w++ {
		fmt.Fprintf(&sb, "\t\tthread t%d = spawn this.work%d();\n", w, w)
	}
	// Consistent disciplines join everything; the chaotic one joins a
	// random subset so unjoined workers run concurrently with main's
	// trailing accesses.
	for w := 0; w < cfg.Workers; w++ {
		if disc != disciplineChaotic || rng.Float64() < 0.7 {
			fmt.Fprintf(&sb, "\t\tjoin(t%d);\n", w)
		}
	}
	// Main's own trailing accesses, under the program discipline.
	for i := 0; i < 2; i++ {
		f := rng.Intn(cfg.SharedFields)
		stmt := fmt.Sprintf("int m%d = d.f%d;", i, f)
		if rng.Intn(2) == 0 {
			stmt = fmt.Sprintf("d.f%d = %d;", f, i)
		}
		switch disc {
		case disciplineLock:
			fmt.Fprintf(&sb, "\t\tsynchronized (lock0) { %s }\n", stmt)
		case disciplineAtomic:
			fmt.Fprintf(&sb, "\t\tatomic { %s }\n", stmt)
		default:
			fmt.Fprintf(&sb, "\t\t%s\n", stmt)
		}
	}
	sb.WriteString("\t}\n}\n")
	return sb.String()
}

// genBlock emits one statement block for a worker body; op makes the
// block's local names unique within the method.
func genBlock(rng *rand.Rand, cfg Config, disc discipline, worker, depth, op int) string {
	ind := strings.Repeat("\t", depth)
	roll := rng.Float64()
	f := rng.Intn(cfg.SharedFields)
	g := rng.Intn(cfg.SharedFields)
	if disc == disciplinePartition {
		f = worker % cfg.SharedFields
		g = f
	}

	body := func() string {
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%s\td.f%d = d.f%d + 1;\n", ind, f, f)
		case 1:
			return fmt.Sprintf("%s\tint x%d = d.f%d;\n%s\td.f%d = x%d;\n", ind, op, f, ind, g, op)
		default:
			return fmt.Sprintf("%s\tint y%d = d.f%d + d.f%d;\n", ind, op, f, g)
		}
	}

	switch disc {
	case disciplineLock:
		return fmt.Sprintf("%ssynchronized (lock0) {\n%s%s}\n", ind, body(), ind)
	case disciplineAtomic:
		return ind + "atomic {\n" + body() + ind + "}\n"
	case disciplinePartition:
		return body()
	}
	switch {
	case roll < cfg.AtomicBias:
		return ind + "atomic {\n" + body() + ind + "}\n"
	case roll < cfg.AtomicBias+cfg.SyncBias:
		l := rng.Intn(cfg.Locks)
		return fmt.Sprintf("%ssynchronized (lock%d) {\n%s%s}\n", ind, l, body(), ind)
	case cfg.VolatileHandshakes && roll < cfg.AtomicBias+cfg.SyncBias+0.1:
		// Volatile publication or consumption.
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("%sd.f%d = d.f%d + 1;\n%sd.flag = d.flag + 1;\n", ind, f, f, ind)
		}
		return fmt.Sprintf("%sif (d.flag > 0) {\n%s\tint z%d = d.f%d;\n%s}\n", ind, ind, op, f, ind)
	default:
		return body()
	}
}

// FromSeed generates a program deterministically with the default
// configuration.
func FromSeed(seed int64) string {
	return Generate(rand.New(rand.NewSource(seed)), Default())
}
