package jrt

import (
	"sync"

	"goldilocks/internal/detect"
	"goldilocks/internal/event"
)

// Recorder wraps a runtime Detector and records the linearization of
// actions it observes, in the order the inner detector observes them.
// The recorded trace can be replayed through any offline detector or
// the happens-before oracle — the bridge between live monitored
// executions and trace-level analysis (and the repository's strongest
// end-to-end check: a live run's races must equal the oracle's verdict
// on its own recording).
//
// The recorder serializes every detector call through one mutex, so the
// recorded order is exactly the linearization the inner detector
// observed (recording trades detector concurrency for fidelity, which
// is the right trade for a debugging/replay facility).
type Recorder struct {
	inner Detector

	mu      sync.Mutex
	actions []event.Action
}

// Record wraps det with recording. Pass the result as Config.Detector.
func Record(det Detector) *Recorder { return &Recorder{inner: det} }

// Trace returns the recorded linearization so far.
func (r *Recorder) Trace() *event.Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	actions := make([]event.Action, len(r.actions))
	copy(actions, r.actions)
	return event.NewTrace(actions)
}

// Sync implements Detector.
func (r *Recorder) Sync(a event.Action) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inner.Sync(a)
	r.actions = append(r.actions, a)
}

// Read implements Detector.
func (r *Recorder) Read(t event.Tid, o event.Addr, f event.FieldID) *detect.Race {
	r.mu.Lock()
	defer r.mu.Unlock()
	race := r.inner.Read(t, o, f)
	r.actions = append(r.actions, event.Read(t, o, f))
	return race
}

// Write implements Detector.
func (r *Recorder) Write(t event.Tid, o event.Addr, f event.FieldID) *detect.Race {
	r.mu.Lock()
	defer r.mu.Unlock()
	race := r.inner.Write(t, o, f)
	r.actions = append(r.actions, event.Write(t, o, f))
	return race
}

// Commit implements Detector.
func (r *Recorder) Commit(t event.Tid, reads, writes []event.Variable) []detect.Race {
	r.mu.Lock()
	defer r.mu.Unlock()
	races := r.inner.Commit(t, reads, writes)
	r.actions = append(r.actions, event.Commit(t, reads, writes))
	return races
}

// Alloc implements Detector.
func (r *Recorder) Alloc(t event.Tid, o event.Addr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inner.Alloc(t, o)
	r.actions = append(r.actions, event.Alloc(t, o))
}
