package jrt

import (
	"fmt"
	"sync/atomic"

	"goldilocks/internal/event"
)

// Object is a heap object: a class, an address, data/volatile slots, and
// a monitor. Slots hold boxed values behind atomic pointers so that a
// program that races (and chooses to continue past the
// DataRaceException) still cannot corrupt the runtime itself.
type Object struct {
	class *Class
	addr  event.Addr
	slots []atomic.Pointer[Value]

	// monitor state; guarded by the runtime scheduler's state lock.
	mon monitor

	// arrayLen >= 0 marks an array object.
	arrayLen int
}

// monitor is the per-object reentrant monitor.
type monitor struct {
	owner    *Thread
	depth    int
	waiting  []*Thread // threads in o.wait()
	notified map[*Thread]bool
}

// Class returns the object's class ([] for arrays).
func (o *Object) Class() *Class { return o.class }

// Addr returns the object's runtime address (its identity for the
// detector).
func (o *Object) Addr() event.Addr { return o.addr }

// IsArray reports whether the object is an array.
func (o *Object) IsArray() bool { return o.arrayLen >= 0 }

// Len returns the array length; 0 for non-arrays.
func (o *Object) Len() int {
	if o.arrayLen < 0 {
		return 0
	}
	return o.arrayLen
}

// Variable returns the detector variable for field f of this object.
func (o *Object) Variable(f event.FieldID) event.Variable {
	return event.Variable{Obj: o.addr, Field: f}
}

func (o *Object) load(f event.FieldID) Value {
	p := o.slots[f].Load()
	if p == nil {
		return nil
	}
	return *p
}

func (o *Object) store(f event.FieldID, v Value) {
	o.slots[f].Store(&v)
}

func (o *Object) String() string {
	if o == nil {
		return "null"
	}
	if o.IsArray() {
		return fmt.Sprintf("%s[%d]@%d", o.class.Name, o.arrayLen, o.addr)
	}
	return fmt.Sprintf("%s@%d", o.class.Name, o.addr)
}

// checkIndex panics with a runtime error on out-of-bounds access,
// mirroring ArrayIndexOutOfBoundsException.
func (o *Object) checkIndex(i int) {
	if !o.IsArray() {
		panic(fmt.Sprintf("jrt: %v is not an array", o))
	}
	if i < 0 || i >= o.arrayLen {
		panic(&IndexOutOfBounds{Object: o, Index: i})
	}
}

// IndexOutOfBounds is the runtime's ArrayIndexOutOfBoundsException.
type IndexOutOfBounds struct {
	Object *Object
	Index  int
}

func (e *IndexOutOfBounds) Error() string {
	return fmt.Sprintf("index %d out of bounds for %v", e.Index, e.Object)
}
