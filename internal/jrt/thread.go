package jrt

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/resilience"
)

// Thread is a managed thread. All object, monitor, and thread operations
// take the acting thread as receiver; a Thread must only be used from
// the goroutine running it.
type Thread struct {
	rt         *Runtime
	id         event.Tid
	terminated bool
	// heldMons are the monitors the thread currently owns (outermost
	// acquires only), maintained inside scheduler-atomic transitions;
	// the deadlock reporter reads it to say who holds what.
	heldMons []event.Addr
}

func (t *Thread) noteMonitorHeld(o event.Addr) { t.heldMons = append(t.heldMons, o) }
func (t *Thread) noteMonitorFreed(o event.Addr) {
	for i := len(t.heldMons) - 1; i >= 0; i-- {
		if t.heldMons[i] == o {
			t.heldMons = append(t.heldMons[:i], t.heldMons[i+1:]...)
			return
		}
	}
}

// ID returns the thread's identifier.
func (t *Thread) ID() event.Tid { return t.id }

// Runtime returns the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// Spawn starts a new thread running body and returns it. The fork
// happens-before everything body does. As in the paper's runtime, a
// DataRaceException that body does not catch terminates the thread
// gracefully (the race is already recorded); other panics propagate and
// crash the host, as befits host-level bugs.
func (t *Thread) Spawn(body func(u *Thread)) *Thread {
	u := t.rt.newThread()
	t.rt.sched.yield(t)
	t.rt.sync(event.Fork(t.id, u.id))
	rt := t.rt
	rt.sched.start(u, func() {
		// A scheduler failure (deadlock) unwinds the goroutine with a
		// *resilience.Report; record it and let the goroutine die
		// quietly — the run is over and waitAll has been released.
		defer func() {
			if r := recover(); r != nil {
				if rep, ok := r.(*resilience.Report); ok {
					rt.noteFailure(rep)
					return
				}
				panic(r)
			}
		}()
		defer rt.sched.exited(u)
		if drx := u.Try(func() { body(u) }); drx != nil {
			rt.noteUncaught(drx)
		}
	})
	return u
}

// Join blocks until u terminates; everything u did happens-before Join's
// return.
func (t *Thread) Join(u *Thread) {
	t.rt.sched.yield(t)
	t.rt.sched.exec(t, func() bool { return u.terminated })
	t.rt.sync(event.Join(t.id, u.id))
}

// Exec runs attempt atomically with respect to every other runtime
// state transition, blocking the thread until attempt returns true.
// attempt must be a try-operation: either apply its effect and return
// true, or leave state untouched and return false.
//
// Exec creates no detector events: it is the hook with which substrate
// packages (notably the stm transaction manager) implement their
// internal synchronization — synchronization that, as in the paper, must
// stay invisible to the race detector, which sees only the high-level
// commit(R, W) actions.
func (t *Thread) Exec(attempt func() bool) {
	t.rt.sched.yield(t)
	t.rt.sched.exec(t, attempt)
}

// CommitTxn reports a transaction's read and write sets to the race
// detector at its commit point and raises a DataRaceException if any
// accessed variable races (returning the remaining races when the
// policy is Log). Transaction managers call this; application code uses
// the stm package.
func (t *Thread) CommitTxn(reads, writes []event.Variable) {
	rt := t.rt
	rt.syncOps.Add(1)
	rt.totalAccesses.Add(uint64(len(reads) + len(writes)))
	if rt.det == nil {
		return
	}
	rt.checkedAccesses.Add(uint64(len(reads) + len(writes)))
	races := rt.det.Commit(t.id, reads, writes)
	if len(races) == 0 {
		return
	}
	for _, r := range races {
		rt.recordRace(r)
	}
	if rt.policy == Throw {
		rt.racesThrown.Add(1)
		panic(&DataRaceException{Race: races[0], Thread: t.id})
	}
}

// Try runs body and catches a DataRaceException thrown by it, returning
// the exception (nil if none). Other panics propagate.
func (t *Thread) Try(body func()) (drx *DataRaceException) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(*DataRaceException); ok {
				drx = e
				return
			}
			panic(r)
		}
	}()
	body()
	return nil
}

// New allocates an object of class c. Allocation resets the detector's
// per-field state for the address (Figure 5, rule 8).
func (t *Thread) New(c *Class) *Object {
	o := &Object{
		class:    c,
		addr:     event.Addr(t.rt.nextAddr.Add(1)),
		slots:    make([]atomic.Pointer[Value], len(c.Fields)),
		arrayLen: -1,
	}
	o.mon.notified = make(map[*Thread]bool)
	t.rt.varsCreated.Add(uint64(dataFieldCount(c)))
	t.rt.sched.yield(t)
	if t.rt.det != nil {
		t.rt.det.Alloc(t.id, o.addr)
	}
	return o
}

// NewArray allocates an array of n elements; each element is a distinct
// data variable for the detector.
func (t *Thread) NewArray(n int) *Object {
	if n < 0 {
		panic(fmt.Sprintf("jrt: negative array length %d", n))
	}
	o := &Object{
		class:    arrayClass,
		addr:     event.Addr(t.rt.nextAddr.Add(1)),
		slots:    make([]atomic.Pointer[Value], n),
		arrayLen: n,
	}
	o.mon.notified = make(map[*Thread]bool)
	t.rt.varsCreated.Add(uint64(n))
	t.rt.sched.yield(t)
	if t.rt.det != nil {
		t.rt.det.Alloc(t.id, o.addr)
	}
	return o
}

func dataFieldCount(c *Class) int {
	n := 0
	for _, f := range c.Fields {
		if !f.Volatile {
			n++
		}
	}
	return n
}

// Get reads data field f of o, race-checking unless the field is marked
// NoCheck.
func (t *Thread) Get(o *Object, f event.FieldID) Value {
	fd := o.class.Fields[f]
	if fd.Volatile {
		return t.GetVolatile(o, f)
	}
	t.rt.sched.yield(t)
	t.access(o, f, false, !fd.NoCheck)
	return o.load(f)
}

// Set writes data field f of o.
func (t *Thread) Set(o *Object, f event.FieldID, v Value) {
	fd := o.class.Fields[f]
	if fd.Volatile {
		t.SetVolatile(o, f, v)
		return
	}
	t.rt.sched.yield(t)
	t.access(o, f, true, !fd.NoCheck)
	o.store(f, v)
}

// GetField / SetField address fields by name (convenience for examples).
func (t *Thread) GetField(o *Object, name string) Value {
	return t.Get(o, o.class.MustFieldID(name))
}

// SetField writes the named field.
func (t *Thread) SetField(o *Object, name string, v Value) {
	t.Set(o, o.class.MustFieldID(name), v)
}

// Load reads array element i.
func (t *Thread) Load(o *Object, i int) Value {
	o.checkIndex(i)
	t.rt.sched.yield(t)
	t.arrayAccess(o, event.FieldID(i), false)
	return o.load(event.FieldID(i))
}

// Store writes array element i.
func (t *Thread) Store(o *Object, i int, v Value) {
	o.checkIndex(i)
	t.rt.sched.yield(t)
	t.arrayAccess(o, event.FieldID(i), true)
	o.store(event.FieldID(i), v)
}

// arrayAccess widens the disable-after-race policy to the whole array
// when Config.DisableArrayAfterRace is set.
func (t *Thread) arrayAccess(o *Object, f event.FieldID, isWrite bool) {
	if t.rt.arrayDisabled(o.addr) {
		t.rt.totalAccesses.Add(1)
		return
	}
	racesBefore := t.rt.racesSeen()
	defer func() {
		if t.rt.disableArrays && t.rt.racesSeen() > racesBefore {
			t.rt.disableArray(o.addr)
		}
	}()
	t.access(o, f, isWrite, true)
}

// LoadUnchecked / StoreUnchecked access array elements with race
// checking disabled (used when static analysis proves the accesses
// race-free, and by the transaction manager whose commits subsume the
// element accesses).
func (t *Thread) LoadUnchecked(o *Object, i int) Value {
	o.checkIndex(i)
	t.rt.sched.yield(t)
	t.rt.totalAccesses.Add(1)
	return o.load(event.FieldID(i))
}

// StoreUnchecked writes array element i without race checking.
func (t *Thread) StoreUnchecked(o *Object, i int, v Value) {
	o.checkIndex(i)
	t.rt.sched.yield(t)
	t.rt.totalAccesses.Add(1)
	o.store(event.FieldID(i), v)
}

// GetUnchecked reads field f without race checking (static analysis
// said the access site cannot race).
func (t *Thread) GetUnchecked(o *Object, f event.FieldID) Value {
	t.rt.sched.yield(t)
	t.rt.totalAccesses.Add(1)
	return o.load(f)
}

// SetUnchecked writes field f without race checking.
func (t *Thread) SetUnchecked(o *Object, f event.FieldID, v Value) {
	t.rt.sched.yield(t)
	t.rt.totalAccesses.Add(1)
	o.store(f, v)
}

// access performs the bookkeeping and race check for a data access.
func (t *Thread) access(o *Object, f event.FieldID, isWrite, check bool) {
	rt := t.rt
	rt.totalAccesses.Add(1)
	if !check || rt.det == nil {
		return
	}
	rt.checkedAccesses.Add(1)
	var race *detect.Race
	if isWrite {
		race = rt.det.Write(t.id, o.addr, f)
	} else {
		race = rt.det.Read(t.id, o.addr, f)
	}
	if race == nil {
		return
	}
	rt.recordRace(*race)
	if rt.policy == Throw {
		rt.racesThrown.Add(1)
		panic(&DataRaceException{Race: *race, Thread: t.id})
	}
}

// GetVolatile reads volatile field f of o: a synchronization action.
// The load and the detector event are performed atomically with respect
// to other synchronization actions, so the synchronization order the
// detector records matches the order the memory operations actually
// took. In free mode the read also yields the processor: volatile reads
// in a loop are almost always a spin-wait, and the writer needs CPU
// time to ever satisfy it.
func (t *Thread) GetVolatile(o *Object, f event.FieldID) Value {
	t.rt.sched.yield(t)
	var v Value
	t.rt.sched.exec(t, func() bool {
		v = o.load(f)
		t.rt.sync(event.VolatileRead(t.id, o.addr, f))
		return true
	})
	if _, free := t.rt.sched.(*freeSched); free {
		runtime.Gosched()
	}
	return v
}

// SetVolatile writes volatile field f of o: a synchronization action.
func (t *Thread) SetVolatile(o *Object, f event.FieldID, v Value) {
	t.rt.sched.yield(t)
	t.rt.sched.exec(t, func() bool {
		o.store(f, v)
		t.rt.sync(event.VolatileWrite(t.id, o.addr, f))
		return true
	})
}
