package jrt_test

import (
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/event"
	"goldilocks/internal/hb"
	"goldilocks/internal/jrt"
	"goldilocks/internal/resilience"
)

func newChanRuntime(seed int64) *jrt.Runtime {
	return jrt.NewRuntime(jrt.Config{
		Detector: core.New(),
		Policy:   jrt.Log,
		Mode:     jrt.Deterministic,
		Seed:     seed,
	})
}

// TestChanHandoffNoRace: the message-passing idiom — write, send;
// recv, write — is race-free through the channel's happens-before edge.
func TestChanHandoffNoRace(t *testing.T) {
	rt := newChanRuntime(1)
	rt.Run(func(th *jrt.Thread) {
		data := th.New(rt.DefineClass("Data", jrt.FieldDecl{Name: "x"}))
		c := th.NewChan(0)
		u := th.Spawn(func(u *jrt.Thread) {
			v, ok := u.Recv(c)
			if !ok || v != 42 {
				t.Errorf("Recv = (%v, %v), want (42, true)", v, ok)
			}
			u.Set(data, 0, 2)
		})
		th.Set(data, 0, 1)
		th.Send(c, 42)
		th.Join(u)
	})
	if races := rt.Races(); len(races) != 0 {
		t.Fatalf("handoff raced: %v", races)
	}
	if rep := rt.Failure(); rep != nil {
		t.Fatalf("scheduler failure: %v", rep)
	}
}

// TestChanNoSyncStillRaces: the channel edge orders only what precedes
// the send against what follows the recv; a write racing around the
// rendezvous is still reported.
func TestChanNoSyncStillRaces(t *testing.T) {
	rt := newChanRuntime(3)
	rt.Run(func(th *jrt.Thread) {
		data := th.New(rt.DefineClass("Data", jrt.FieldDecl{Name: "x"}))
		c := th.NewChan(0)
		u := th.Spawn(func(u *jrt.Thread) {
			u.Set(data, 0, 2) // before u's send: unordered with main's write
			u.Send(c, 1)
		})
		th.Set(data, 0, 1) // concurrent with u's write
		th.Recv(c)
		th.Join(u)
	})
	if races := rt.Races(); len(races) != 1 {
		t.Fatalf("races = %v, want exactly 1", rt.Races())
	}
}

// TestChanBufferedFIFO: a capacity-2 conveyor delivers in order and the
// producer's writes are visible to the consumer without races.
func TestChanBufferedFIFO(t *testing.T) {
	rt := newChanRuntime(7)
	var got []jrt.Value
	rt.Run(func(th *jrt.Thread) {
		c := th.NewChan(2)
		u := th.Spawn(func(u *jrt.Thread) {
			for i := 0; i < 5; i++ {
				u.Send(c, i)
			}
			u.Close(c)
		})
		for {
			v, ok := th.Recv(c)
			if !ok {
				break
			}
			got = append(got, v)
		}
		th.Join(u)
	})
	if rep := rt.Failure(); rep != nil {
		t.Fatalf("scheduler failure: %v", rep)
	}
	if len(got) != 5 {
		t.Fatalf("received %v, want 5 messages", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out-of-order delivery: got %v", got)
		}
	}
	if races := rt.Races(); len(races) != 0 {
		t.Fatalf("unexpected races: %v", races)
	}
}

// TestRecvFromClosedNonBlocking pins the drain semantics: recv from a
// closed, drained channel does not block, yields the zero value, and
// still carries the closer's happens-before edge.
func TestRecvFromClosedNonBlocking(t *testing.T) {
	rt := newChanRuntime(5)
	rt.Run(func(th *jrt.Thread) {
		data := th.New(rt.DefineClass("Data", jrt.FieldDecl{Name: "x"}))
		c := th.NewChan(0)
		u := th.Spawn(func(u *jrt.Thread) {
			// Blocks until the close, then drains without a sender.
			v, ok := u.Recv(c)
			if ok || v != nil {
				t.Errorf("drain Recv = (%v, %v), want (nil, false)", v, ok)
			}
			u.Set(data, 0, 2) // ordered after main's write via the close edge
		})
		th.Set(data, 0, 1)
		th.Close(c)
		th.Join(u)
	})
	if rep := rt.Failure(); rep != nil {
		t.Fatalf("scheduler failure: %v", rep)
	}
	if races := rt.Races(); len(races) != 0 {
		t.Fatalf("close edge missed, races: %v", races)
	}
}

// TestSelectDefaultNoEdge: a select whose default fires performs no
// synchronization — no detector event, and no happens-before edge, so
// the surrounding race stays visible.
func TestSelectDefaultNoEdge(t *testing.T) {
	rt := newChanRuntime(9)
	var idx int
	rt.Run(func(th *jrt.Thread) {
		data := th.New(rt.DefineClass("Data", jrt.FieldDecl{Name: "x"}))
		c := th.NewChan(1)
		th.Send(c, 1) // fill the buffer: the send arm below cannot proceed
		before := rt.Stats().SyncOps
		u := th.Spawn(func(u *jrt.Thread) {
			var v jrt.Value
			var ok bool
			idx, v, ok = u.Select([]jrt.SelectCase{{Chan: c, Send: true, Value: 2}}, true)
			if v != nil || ok {
				t.Errorf("default arm returned (%v, %v), want (nil, false)", v, ok)
			}
			u.Set(data, 0, 2)
		})
		th.Set(data, 0, 1) // races with u's write: the default created no edge
		th.Join(u)
		// Spawn and Join each emit one sync op; the select must emit none.
		if after := rt.Stats().SyncOps; after != before+2 {
			t.Errorf("select-with-default emitted %d extra sync ops", after-before-2)
		}
	})
	if idx != -1 {
		t.Fatalf("select took arm %d, want default (-1)", idx)
	}
	if races := rt.Races(); len(races) != 1 {
		t.Fatalf("races = %v, want exactly 1 (default must not synchronize)", rt.Races())
	}
}

// TestSelectTakesReadyArm: with a message in flight the recv arm wins
// over the default and synchronizes normally.
func TestSelectTakesReadyArm(t *testing.T) {
	rt := newChanRuntime(11)
	rt.Run(func(th *jrt.Thread) {
		data := th.New(rt.DefineClass("Data", jrt.FieldDecl{Name: "x"}))
		c := th.NewChan(1)
		u := th.Spawn(func(u *jrt.Thread) {
			u.Set(data, 0, 2)
			u.Send(c, 7)
		})
		th.Join(u)
		idx, v, ok := th.Select([]jrt.SelectCase{{Chan: c}}, true)
		if idx != 0 || v != 7 || !ok {
			t.Errorf("Select = (%d, %v, %v), want (0, 7, true)", idx, v, ok)
		}
		th.Set(data, 0, 1)
	})
	if races := rt.Races(); len(races) != 0 {
		t.Fatalf("unexpected races: %v", races)
	}
}

// TestSendOnClosedPanics mirrors Go: a send on a closed channel panics
// with *ClosedChannel, and the program can recover it.
func TestSendOnClosedPanics(t *testing.T) {
	rt := newChanRuntime(13)
	var caught *jrt.ClosedChannel
	rt.Run(func(th *jrt.Thread) {
		c := th.NewChan(1)
		th.Close(c)
		func() {
			defer func() {
				if e, ok := recover().(*jrt.ClosedChannel); ok {
					caught = e
				}
			}()
			th.Send(c, 1)
		}()
	})
	if caught == nil || caught.Op != "send" {
		t.Fatalf("caught = %v, want a send ClosedChannel panic", caught)
	}
}

// TestDoubleClosePanics mirrors Go's close-of-closed panic.
func TestDoubleClosePanics(t *testing.T) {
	rt := newChanRuntime(13)
	var caught *jrt.ClosedChannel
	rt.Run(func(th *jrt.Thread) {
		c := th.NewChan(0)
		th.Close(c)
		func() {
			defer func() {
				if e, ok := recover().(*jrt.ClosedChannel); ok {
					caught = e
				}
			}()
			th.Close(c)
		}()
	})
	if caught == nil || caught.Op != "close" {
		t.Fatalf("caught = %v, want a close ClosedChannel panic", caught)
	}
}

// TestChanDeadlockReported: a recv nobody will ever satisfy is a
// deadlock the deterministic scheduler reports structurally instead of
// hanging.
func TestChanDeadlockReported(t *testing.T) {
	rt := newChanRuntime(17)
	rt.Run(func(th *jrt.Thread) {
		c := th.NewChan(0)
		th.Recv(c) // no sender, never closed
	})
	rep := rt.Failure()
	if rep == nil || rep.Kind != resilience.Deadlock {
		t.Fatalf("Failure() = %v, want a deadlock report", rep)
	}
}

// TestGuardQuarantinesBadChanEvent is the satellite acceptance check: a
// malformed channel event (send on a channel the detector never saw
// made) panics inside the vector-clock detector with a structured
// corruption report; the Guard barrier recovers it and the detector
// keeps serving.
func TestGuardQuarantinesBadChanEvent(t *testing.T) {
	g := jrt.Guard(jrt.Serialize(hb.NewDetector()), resilience.Quarantine)
	g.Sync(event.ChanSend(1, 99)) // never made: corruption panic inside
	panics, _ := g.GuardStats()
	if panics != 1 {
		t.Fatalf("GuardStats panics = %d, want 1", panics)
	}
	// The detector still works: an unsynchronized write pair still races.
	g.Alloc(1, 5)
	if r := g.Write(1, 5, 0); r != nil {
		t.Fatalf("first write raced: %v", r)
	}
	if r := g.Write(2, 5, 0); r == nil {
		t.Fatal("race missed after recovered channel-event panic")
	}
}
