package jrt_test

import (
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/hb"
	"goldilocks/internal/jrt"
	"goldilocks/internal/resilience"
)

// faultyDetector panics on accesses to one designated variable and
// delegates everything else to a wrapped serialized detector.
type faultyDetector struct {
	jrt.Detector
	bad event.Variable
}

func (f *faultyDetector) Read(t event.Tid, o event.Addr, fl event.FieldID) *detect.Race {
	if (event.Variable{Obj: o, Field: fl}) == f.bad {
		panic("synthetic detector bug")
	}
	return f.Detector.Read(t, o, fl)
}

func (f *faultyDetector) Write(t event.Tid, o event.Addr, fl event.FieldID) *detect.Race {
	if (event.Variable{Obj: o, Field: fl}) == f.bad {
		panic("synthetic detector bug")
	}
	return f.Detector.Write(t, o, fl)
}

// TestGuardQuarantinesVariable: a panicking check on one variable is
// contained; other variables keep being checked (a seeded race on a
// different variable is still caught).
func TestGuardQuarantinesVariable(t *testing.T) {
	inner := &faultyDetector{Detector: jrt.Serialize(hb.NewDetector())}
	g := jrt.Guard(inner, resilience.Quarantine)

	// Accesses to the bad variable return no race and do not crash.
	inner.bad = event.Variable{Obj: 7, Field: 0}
	if r := g.Write(1, 7, 0); r != nil {
		t.Fatalf("quarantined write returned race %v", r)
	}
	if r := g.Read(2, 7, 0); r != nil {
		t.Fatalf("quarantined read returned race %v", r)
	}
	panics, quarantined := g.GuardStats()
	if panics == 0 || quarantined != 1 {
		t.Fatalf("GuardStats = (%d, %d), want panics>0 and 1 variable", panics, quarantined)
	}

	// A racy pair on a healthy variable is still detected: T1 writes,
	// T2 writes with no synchronization between them.
	g.Alloc(1, 9)
	if r := g.Write(1, 9, 0); r != nil {
		t.Fatalf("first write raced: %v", r)
	}
	if r := g.Write(2, 9, 0); r == nil {
		t.Fatal("race on healthy variable missed after quarantine")
	}
}

// TestGuardAbortPropagates: under the Abort policy the panic escapes.
func TestGuardAbortPropagates(t *testing.T) {
	inner := &faultyDetector{Detector: jrt.Serialize(hb.NewDetector()), bad: event.Variable{Obj: 1, Field: 0}}
	g := jrt.Guard(inner, resilience.Abort)
	defer func() {
		if recover() == nil {
			t.Fatal("Abort policy swallowed the panic")
		}
	}()
	g.Read(1, 1, 0)
}

// TestGuardAllocLiftsQuarantine: reallocation makes the fields fresh
// variables again.
func TestGuardAllocLiftsQuarantine(t *testing.T) {
	inner := &faultyDetector{Detector: jrt.Serialize(hb.NewDetector()), bad: event.Variable{Obj: 5, Field: 2}}
	g := jrt.Guard(inner, resilience.Quarantine)
	g.Read(1, 5, 2) // panics inside, quarantined
	if _, q := g.GuardStats(); q != 1 {
		t.Fatal("variable not quarantined")
	}
	inner.bad = event.Variable{} // bug "fixed" for the fresh object
	g.Alloc(1, 5)
	if r := g.Write(1, 5, 2); r != nil {
		t.Fatalf("post-alloc write returned race %v", r)
	}
	if r := g.Write(2, 5, 2); r == nil {
		t.Fatal("race on reallocated variable missed: quarantine not lifted")
	}
}

// TestInjectedFaultProgramCompletes is the ISSUE acceptance scenario: a
// full MJ-style program runs under the deterministic scheduler with a
// fault injector forcing a detector panic on one variable; the program
// still runs to completion, the variable is quarantined, and a race on
// an unrelated variable is still reported.
func TestInjectedFaultProgramCompletes(t *testing.T) {
	// The injector can only name variables by raw address; addresses are
	// allocated sequentially from 1, and the first object the program
	// allocates is the shared counter ⇒ Obj 1, Field 0.
	eng := core.NewEngine(core.Options{
		OnError:  resilience.Quarantine,
		Injector: &resilience.Injector{PanicOnVars: []event.Variable{{Obj: 1, Field: 0}}},
	})
	rt := jrt.NewRuntime(jrt.Config{Detector: eng, Policy: jrt.Log, Mode: jrt.Deterministic, Seed: 11})

	completed := false
	rt.Run(func(th *jrt.Thread) {
		counter := rt.DefineClass("Counter", jrt.FieldDecl{Name: "n"})
		plain := rt.DefineClass("Plain", jrt.FieldDecl{Name: "x"})
		c := th.New(counter) // Obj 1: every check on (1,0) is a forced fault
		p := th.New(plain)   // Obj 2: healthy, raced on below
		lock := th.New(rt.DefineClass("Lock"))

		th.Set(c, 0, 0)
		u := th.Spawn(func(u *jrt.Thread) {
			u.Synchronized(lock, func() {
				u.Set(c, 0, 1) // faulting variable, under lock
			})
			u.Set(p, 0, 1) // unsynchronized: races with main's write
		})
		th.Synchronized(lock, func() {
			th.Set(c, 0, 2)
		})
		th.Set(p, 0, 2) // the racy pair's other half
		th.Join(u)
		completed = true
	})

	if !completed {
		t.Fatal("program did not run to completion under injected faults")
	}
	if rep := rt.Failure(); rep != nil {
		t.Fatalf("unexpected scheduler failure: %v", rep)
	}
	st := eng.Stats()
	if st.PanicsRecovered == 0 {
		t.Fatal("injected fault never fired")
	}
	if st.VarsQuarantined != 1 {
		t.Fatalf("VarsQuarantined = %d, want 1", st.VarsQuarantined)
	}
	// The healthy variable's race must still be found.
	found := false
	for _, r := range rt.Races() {
		if r.Var == (event.Variable{Obj: 2, Field: 0}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("race on healthy variable missed; races = %v", rt.Races())
	}
}
