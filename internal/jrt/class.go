// Package jrt is a race- and transaction-aware managed runtime: the
// repository's stand-in for the paper's modified Kaffe JVM. It provides
// a Java-like object model — objects with data and volatile fields,
// reentrant monitors with wait/notify, fork/join threads, arrays — and
// funnels every action through a pluggable dynamic race detector. When
// an access is about to complete an actual data race the runtime throws
// a DataRaceException in the accessing thread, which the program may
// catch and handle; if no DataRaceException is thrown, the execution is
// sequentially consistent (and strongly atomic when the stm package's
// transactions are used).
//
// Two execution modes are provided: a deterministic mode in which a
// seeded cooperative scheduler chooses the interleaving (used by tests
// and examples that must reproduce a specific race), and a free mode in
// which threads are ordinary goroutines (used by the benchmarks, where
// wall-clock overhead is the measurement).
package jrt

import (
	"fmt"

	"goldilocks/internal/event"
)

// Value is any value storable in an object field: Go scalars, strings,
// *Object references, or nil.
type Value any

// FieldDecl declares one field of a class.
type FieldDecl struct {
	Name string
	// Volatile marks the field as a synchronization variable: accesses
	// are never data races and create happens-before edges.
	Volatile bool
	// NoCheck marks the field as statically proven race-free; the
	// runtime skips dynamic race checks on it. Set by the static
	// analyses (the analog of the paper's class-file flag bits).
	NoCheck bool
}

// Class describes an object layout. Create classes with
// Runtime.DefineClass; the runtime interns them by name.
type Class struct {
	Name   string
	Fields []FieldDecl

	byName map[string]event.FieldID
}

// FieldID returns the field id for name; ok is false if no such field.
func (c *Class) FieldID(name string) (event.FieldID, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// MustFieldID is FieldID for fields known to exist.
func (c *Class) MustFieldID(name string) event.FieldID {
	id, ok := c.byName[name]
	if !ok {
		panic(fmt.Sprintf("jrt: class %s has no field %q", c.Name, name))
	}
	return id
}

// NumFields returns the number of declared fields.
func (c *Class) NumFields() int { return len(c.Fields) }

// SetNoCheck marks the named field as statically race-free.
func (c *Class) SetNoCheck(name string) {
	id := c.MustFieldID(name)
	c.Fields[id].NoCheck = true
}

// arrayClass is the internal class used for arrays; elements are
// addressed by index, not by field declarations.
var arrayClass = &Class{Name: "[]"}
