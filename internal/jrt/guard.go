package jrt

import (
	"sync"
	"sync/atomic"

	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/resilience"
)

// Guarded wraps any runtime Detector with the panic-isolation barrier
// the optimized engine has built in: a panicking check quarantines the
// offending variable (it is never checked again) instead of crashing
// the monitored program. Use it for the serialized detectors
// (vectorclock, eraser, basic) — *core.Engine enforces the same policy
// internally and does not need wrapping.
type Guarded struct {
	inner  Detector
	policy resilience.ErrorPolicy

	mu          sync.Mutex
	quarantined map[event.Variable]bool

	panics      atomic.Uint64
	varsDropped atomic.Uint64
}

// Guard wraps det with panic isolation under the given policy.
func Guard(det Detector, policy resilience.ErrorPolicy) *Guarded {
	return &Guarded{inner: det, policy: policy, quarantined: make(map[event.Variable]bool)}
}

// GuardStats returns the number of panics recovered and variables
// quarantined so far.
func (g *Guarded) GuardStats() (panics, quarantined uint64) {
	return g.panics.Load(), g.varsDropped.Load()
}

// handle processes a recovered panic value: it quarantines vars and
// counts. Abort re-raises. (recover itself must be called directly in
// the deferred function, so callers pass the recovered value in.)
func (g *Guarded) handle(r any, vars ...event.Variable) {
	if g.policy == resilience.Abort {
		panic(r)
	}
	g.panics.Add(1)
	g.mu.Lock()
	for _, v := range vars {
		if !g.quarantined[v] {
			g.quarantined[v] = true
			g.varsDropped.Add(1)
		}
	}
	g.mu.Unlock()
}

func (g *Guarded) isQuarantined(v event.Variable) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.quarantined[v]
}

// Sync implements Detector. A panic here has no variable to blame; it
// is recovered and counted, and the event is dropped.
func (g *Guarded) Sync(a event.Action) {
	defer func() {
		if r := recover(); r != nil {
			g.handle(r)
		}
	}()
	g.inner.Sync(a)
}

// Read implements Detector.
func (g *Guarded) Read(t event.Tid, o event.Addr, f event.FieldID) (race *detect.Race) {
	v := event.Variable{Obj: o, Field: f}
	if g.isQuarantined(v) {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			g.handle(r, v)
			race = nil
		}
	}()
	return g.inner.Read(t, o, f)
}

// Write implements Detector.
func (g *Guarded) Write(t event.Tid, o event.Addr, f event.FieldID) (race *detect.Race) {
	v := event.Variable{Obj: o, Field: f}
	if g.isQuarantined(v) {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			g.handle(r, v)
			race = nil
		}
	}()
	return g.inner.Write(t, o, f)
}

// Commit implements Detector. A panic cannot be attributed to a single
// variable, so the whole read and write set is quarantined —
// conservative, but a commit is one detector step.
func (g *Guarded) Commit(t event.Tid, reads, writes []event.Variable) (races []detect.Race) {
	defer func() {
		if r := recover(); r != nil {
			vars := append(append([]event.Variable(nil), reads...), writes...)
			g.handle(r, vars...)
			races = nil
		}
	}()
	return g.inner.Commit(t, reads, writes)
}

// Alloc implements Detector. Allocation makes the object's fields fresh
// variables, so their quarantine is lifted (mirroring the engine's
// rule-8 reset).
func (g *Guarded) Alloc(t event.Tid, o event.Addr) {
	g.mu.Lock()
	for v := range g.quarantined {
		if v.Obj == o {
			delete(g.quarantined, v)
		}
	}
	g.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			g.handle(r)
		}
	}()
	g.inner.Alloc(t, o)
}
