package jrt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
	"goldilocks/internal/resilience"
)

// Detector is the runtime-facing race-detector interface: concurrent
// entry points for each action class. *core.Engine satisfies it
// natively — its hot path runs without any global lock (sharded
// variable state, lock-free list snapshots, per-thread lock records;
// see docs/PERFORMANCE.md) — so the runtime routes it directly.
// Serialize exists only to adapt the trace-based detect.Detector
// implementations (vector-clock, Eraser, ...), which assume a single
// caller.
type Detector interface {
	Sync(a event.Action)
	Read(t event.Tid, o event.Addr, f event.FieldID) *detect.Race
	Write(t event.Tid, o event.Addr, f event.FieldID) *detect.Race
	Commit(t event.Tid, reads, writes []event.Variable) []detect.Race
	Alloc(t event.Tid, o event.Addr)
}

var _ Detector = (*core.Engine)(nil)

// Serialize wraps a single-threaded detect.Detector (the vector-clock
// detector, Eraser, ...) behind a mutex so it can serve as a runtime
// detector. The serialization also fixes the linearization the detector
// observes.
func Serialize(d detect.Detector) Detector { return &serialized{d: d} }

type serialized struct {
	mu sync.Mutex
	d  detect.Detector
}

func (s *serialized) step(a event.Action) []detect.Race {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Step(a)
}

func (s *serialized) Sync(a event.Action) { s.step(a) }

func (s *serialized) Read(t event.Tid, o event.Addr, f event.FieldID) *detect.Race {
	if rs := s.step(event.Read(t, o, f)); len(rs) > 0 {
		return &rs[0]
	}
	return nil
}

func (s *serialized) Write(t event.Tid, o event.Addr, f event.FieldID) *detect.Race {
	if rs := s.step(event.Write(t, o, f)); len(rs) > 0 {
		return &rs[0]
	}
	return nil
}

func (s *serialized) Commit(t event.Tid, reads, writes []event.Variable) []detect.Race {
	return s.step(event.Commit(t, reads, writes))
}

func (s *serialized) Alloc(t event.Tid, o event.Addr) { s.step(event.Alloc(t, o)) }

// RacePolicy selects what the runtime does when the detector reports a
// race at an access.
type RacePolicy uint8

const (
	// Throw raises a DataRaceException in the accessing thread (the
	// paper's runtime).
	Throw RacePolicy = iota
	// Log records the race and lets the access proceed (debugging-tool
	// mode).
	Log
)

// Mode selects the thread scheduler.
type Mode uint8

const (
	// Deterministic runs threads under a seeded cooperative scheduler;
	// every run with the same seed produces the same interleaving.
	Deterministic Mode = iota
	// Free runs threads as ordinary goroutines.
	Free
)

// Config configures a Runtime.
type Config struct {
	// Detector checks accesses; nil disables race checking entirely
	// (the "uninstrumented" baseline of Table 1).
	Detector Detector
	// Policy is what to do on a detected race.
	Policy RacePolicy
	// Mode selects the scheduler.
	Mode Mode
	// Seed drives the Deterministic scheduler.
	Seed int64
	// Chooser, when non-nil, overrides Seed: scheduling decisions are
	// delegated to it (systematic exploration).
	Chooser Chooser
	// DisableArrayAfterRace mirrors the paper's measurement policy:
	// once any element of an array races, checks for every index of
	// that array are disabled ("checks for all the indices of an array
	// were disabled when a race is detected on any index of the
	// array").
	DisableArrayAfterRace bool
}

// Runtime is a race-aware managed runtime instance.
type Runtime struct {
	det    Detector
	policy RacePolicy
	sched  scheduler

	classMu sync.Mutex
	classes map[string]*Class

	nextAddr atomic.Int64
	nextTid  atomic.Int32

	disableArrays bool
	disabledMu    sync.Mutex
	disabledObjs  map[event.Addr]bool

	// Statistics for Tables 1 and 2.
	totalAccesses   atomic.Uint64
	checkedAccesses atomic.Uint64
	varsCreated     atomic.Uint64
	syncOps         atomic.Uint64
	racesThrown     atomic.Uint64

	raceMu   sync.Mutex
	races    []detect.Race
	uncaught []*DataRaceException
	failure  *resilience.Report
}

// NewRuntime creates a runtime from cfg.
func NewRuntime(cfg Config) *Runtime {
	rt := &Runtime{
		det:           cfg.Detector,
		policy:        cfg.Policy,
		classes:       make(map[string]*Class),
		disableArrays: cfg.DisableArrayAfterRace,
		disabledObjs:  make(map[event.Addr]bool),
	}
	switch cfg.Mode {
	case Free:
		rt.sched = newFreeSched()
	default:
		if cfg.Chooser != nil {
			rt.sched = newDetSchedChooser(cfg.Chooser)
		} else {
			rt.sched = newDetSched(cfg.Seed)
		}
	}
	return rt
}

// DataRaceException is thrown (as a panic in the accessing thread) when
// an access that would complete an actual data race is about to execute.
// Catch it with Thread.Try.
type DataRaceException struct {
	Race   detect.Race
	Thread event.Tid
}

func (e *DataRaceException) Error() string {
	return fmt.Sprintf("DataRaceException in %v: %v", e.Thread, &e.Race)
}

// DefineClass registers (or returns the existing) class with the given
// fields.
func (rt *Runtime) DefineClass(name string, fields ...FieldDecl) *Class {
	rt.classMu.Lock()
	defer rt.classMu.Unlock()
	if c, ok := rt.classes[name]; ok {
		return c
	}
	c := &Class{Name: name, Fields: fields, byName: make(map[string]event.FieldID, len(fields))}
	for i, f := range fields {
		c.byName[f.Name] = event.FieldID(i)
	}
	rt.classes[name] = c
	return c
}

// Class returns the class registered under name, or nil.
func (rt *Runtime) Class(name string) *Class {
	rt.classMu.Lock()
	defer rt.classMu.Unlock()
	return rt.classes[name]
}

// Run executes main as the initial thread and returns after every thread
// spawned (transitively) has terminated. It returns the list of races
// observed (thrown or logged).
//
// A deterministic-scheduler deadlock does not crash the process: Run
// returns the races observed so far and Failure() carries the
// structured resilience.Report (blocked threads, held locks, elapsed).
func (rt *Runtime) Run(main func(t *Thread)) []detect.Race {
	t := rt.newThread()
	if ds, ok := rt.sched.(*detSched); ok {
		ds.register(t, true)
	}
	// In free mode the main thread is the calling goroutine; the wait
	// group tracks only spawned threads, which is exactly what waitAll
	// must wait for after main returns.
	func() {
		defer func() {
			if r := recover(); r != nil {
				if rep, ok := r.(*resilience.Report); ok {
					rt.noteFailure(rep)
					return
				}
				panic(r)
			}
		}()
		defer rt.sched.mainDone(t)
		if drx := t.Try(func() { main(t) }); drx != nil {
			rt.noteUncaught(drx)
		}
	}()
	rt.sched.waitAll()
	rt.raceMu.Lock()
	defer rt.raceMu.Unlock()
	out := make([]detect.Race, len(rt.races))
	copy(out, rt.races)
	return out
}

func (rt *Runtime) newThread() *Thread {
	return &Thread{rt: rt, id: event.Tid(rt.nextTid.Add(1))}
}

// Stats reports the runtime's access accounting.
type Stats struct {
	// TotalAccesses counts every data access performed, checked or not.
	TotalAccesses uint64
	// CheckedAccesses counts accesses submitted to the detector.
	CheckedAccesses uint64
	// VarsCreated counts data variables brought into existence by
	// allocation (fields of objects, elements of arrays).
	VarsCreated uint64
	// SyncOps counts synchronization operations performed.
	SyncOps uint64
	// RacesThrown counts DataRaceExceptions raised.
	RacesThrown uint64
}

// Stats returns a snapshot of the counters.
func (rt *Runtime) Stats() Stats {
	return Stats{
		TotalAccesses:   rt.totalAccesses.Load(),
		CheckedAccesses: rt.checkedAccesses.Load(),
		VarsCreated:     rt.varsCreated.Load(),
		SyncOps:         rt.syncOps.Load(),
		RacesThrown:     rt.racesThrown.Load(),
	}
}

// RegisterMetrics binds the runtime's access accounting into reg under
// the goldilocks_runtime_ namespace, read at scrape time.
func (rt *Runtime) RegisterMetrics(reg *obs.Registry) {
	stat := func(name string, f func(Stats) uint64) {
		reg.RegisterGaugeFunc("goldilocks_runtime_"+name, func() float64 { return float64(f(rt.Stats())) })
	}
	stat("total_accesses", func(s Stats) uint64 { return s.TotalAccesses })
	stat("checked_accesses", func(s Stats) uint64 { return s.CheckedAccesses })
	stat("vars_created", func(s Stats) uint64 { return s.VarsCreated })
	stat("sync_ops", func(s Stats) uint64 { return s.SyncOps })
	stat("races_thrown", func(s Stats) uint64 { return s.RacesThrown })
	reg.RegisterGaugeFunc("goldilocks_runtime_races_recorded", func() float64 {
		return float64(rt.racesSeen())
	})
}

// Races returns the races observed so far.
func (rt *Runtime) Races() []detect.Race {
	rt.raceMu.Lock()
	defer rt.raceMu.Unlock()
	out := make([]detect.Race, len(rt.races))
	copy(out, rt.races)
	return out
}

// racesSeen returns the number of races recorded so far.
func (rt *Runtime) racesSeen() int {
	rt.raceMu.Lock()
	defer rt.raceMu.Unlock()
	return len(rt.races)
}

func (rt *Runtime) recordRace(r detect.Race) {
	rt.raceMu.Lock()
	rt.races = append(rt.races, r)
	rt.raceMu.Unlock()
}

// noteUncaught records a DataRaceException that no handler caught; the
// throwing thread has terminated, mirroring Java's uncaught-exception
// behaviour.
func (rt *Runtime) noteUncaught(drx *DataRaceException) {
	rt.raceMu.Lock()
	rt.uncaught = append(rt.uncaught, drx)
	rt.raceMu.Unlock()
}

// noteFailure records the first scheduler failure report.
func (rt *Runtime) noteFailure(r *resilience.Report) {
	rt.raceMu.Lock()
	if rt.failure == nil {
		rt.failure = r
	}
	rt.raceMu.Unlock()
}

// RecordFailure records a scheduler failure report recovered outside
// the runtime's own barriers. Substrate packages that convert the
// report panic into an error return (the stm transaction manager does,
// so Atomic's callers see a structured error instead of an unwinding
// goroutine) must report it here, or Failure() would claim a clean run.
func (rt *Runtime) RecordFailure(r *resilience.Report) { rt.noteFailure(r) }

// Failure returns the structured report of the scheduler failure that
// ended the run (a deterministic-mode deadlock), or nil if the run
// completed normally.
func (rt *Runtime) Failure() *resilience.Report {
	rt.raceMu.Lock()
	defer rt.raceMu.Unlock()
	return rt.failure
}

// Uncaught returns the DataRaceExceptions that terminated threads
// because no handler caught them.
func (rt *Runtime) Uncaught() []*DataRaceException {
	rt.raceMu.Lock()
	defer rt.raceMu.Unlock()
	out := make([]*DataRaceException, len(rt.uncaught))
	copy(out, rt.uncaught)
	return out
}

// arrayDisabled reports whether checks for the whole object are off.
func (rt *Runtime) arrayDisabled(o event.Addr) bool {
	if !rt.disableArrays {
		return false
	}
	rt.disabledMu.Lock()
	defer rt.disabledMu.Unlock()
	return rt.disabledObjs[o]
}

func (rt *Runtime) disableArray(o event.Addr) {
	rt.disabledMu.Lock()
	rt.disabledObjs[o] = true
	rt.disabledMu.Unlock()
}

func (rt *Runtime) sync(a event.Action) {
	rt.syncOps.Add(1)
	if rt.det != nil {
		rt.det.Sync(a)
	}
}
