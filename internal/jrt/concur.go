package jrt

import (
	"goldilocks/internal/event"
)

// This file provides java.util.concurrent-style primitives implemented
// entirely from the runtime's own monitors and volatile fields — as in
// the paper, Goldilocks needs no special rules for them because "these
// primitives are built using locks and volatile variables".

// AwaitVolatile blocks until pred holds for the value of volatile field
// f of o, then performs the volatile read (one synchronization action)
// and returns the value. It is the runtime's stand-in for the spin loop
// a volatile-based barrier performs: the blocking itself is free, and
// the happens-before edge comes from the single volatile read that
// observes the written value.
func (t *Thread) AwaitVolatile(o *Object, f event.FieldID, pred func(Value) bool) Value {
	for {
		t.rt.sched.yield(t)
		t.rt.sched.exec(t, func() bool { return pred(o.load(f)) })
		v := t.GetVolatile(o, f)
		if pred(v) {
			return v
		}
	}
}

// Barrier is a cyclic sense-reversing barrier: arrivals are counted
// under the barrier object's monitor, and the release is broadcast
// through a volatile sense flag — the synchronization structure of the
// Java Grande barriers whose volatile traffic dominates moldyn and
// raytracer in Table 1.
type Barrier struct {
	obj     *Object
	parties int

	fCount event.FieldID // data field, monitor-guarded
	fSense event.FieldID // volatile release flag
}

// NewBarrier creates a barrier for the given number of parties.
func NewBarrier(t *Thread, parties int) *Barrier {
	c := t.rt.DefineClass("jrt.Barrier",
		FieldDecl{Name: "count"},
		FieldDecl{Name: "sense", Volatile: true},
	)
	b := &Barrier{
		obj:     t.New(c),
		parties: parties,
		fCount:  c.MustFieldID("count"),
		fSense:  c.MustFieldID("sense"),
	}
	t.Synchronized(b.obj, func() {
		t.Set(b.obj, b.fCount, 0)
	})
	t.SetVolatile(b.obj, b.fSense, false)
	return b
}

// Await blocks until all parties have arrived.
func (b *Barrier) Await(t *Thread) {
	sense, _ := t.GetVolatile(b.obj, b.fSense).(bool)
	last := false
	t.Synchronized(b.obj, func() {
		n, _ := t.Get(b.obj, b.fCount).(int)
		n++
		if n == b.parties {
			t.Set(b.obj, b.fCount, 0)
			last = true
		} else {
			t.Set(b.obj, b.fCount, n)
		}
	})
	if last {
		t.SetVolatile(b.obj, b.fSense, !sense)
		return
	}
	t.AwaitVolatile(b.obj, b.fSense, func(v Value) bool {
		s, _ := v.(bool)
		return s != sense
	})
}

// Semaphore is a counting semaphore built on a monitor with wait/notify.
type Semaphore struct {
	obj      *Object
	fPermits event.FieldID
}

// NewSemaphore creates a semaphore with the given number of permits.
func NewSemaphore(t *Thread, permits int) *Semaphore {
	c := t.rt.DefineClass("jrt.Semaphore", FieldDecl{Name: "permits"})
	s := &Semaphore{obj: t.New(c), fPermits: c.MustFieldID("permits")}
	t.Synchronized(s.obj, func() {
		t.Set(s.obj, s.fPermits, permits)
	})
	return s
}

// Acquire takes one permit, blocking while none are available.
func (s *Semaphore) Acquire(t *Thread) {
	t.MonitorEnter(s.obj)
	defer t.MonitorExit(s.obj)
	for {
		n, _ := t.Get(s.obj, s.fPermits).(int)
		if n > 0 {
			t.Set(s.obj, s.fPermits, n-1)
			return
		}
		t.Wait(s.obj)
	}
}

// Release returns one permit.
func (s *Semaphore) Release(t *Thread) {
	t.Synchronized(s.obj, func() {
		n, _ := t.Get(s.obj, s.fPermits).(int)
		t.Set(s.obj, s.fPermits, n+1)
		t.Notify(s.obj)
	})
}

// Latch is a CountDownLatch built on a monitor with wait/notifyAll.
type Latch struct {
	obj    *Object
	fCount event.FieldID
}

// NewLatch creates a latch that opens after n countdowns.
func NewLatch(t *Thread, n int) *Latch {
	c := t.rt.DefineClass("jrt.Latch", FieldDecl{Name: "count"})
	l := &Latch{obj: t.New(c), fCount: c.MustFieldID("count")}
	t.Synchronized(l.obj, func() {
		t.Set(l.obj, l.fCount, n)
	})
	return l
}

// CountDown decrements the latch, waking waiters at zero.
func (l *Latch) CountDown(t *Thread) {
	t.Synchronized(l.obj, func() {
		n, _ := t.Get(l.obj, l.fCount).(int)
		if n > 0 {
			n--
			t.Set(l.obj, l.fCount, n)
		}
		if n == 0 {
			t.NotifyAll(l.obj)
		}
	})
}

// Await blocks until the latch reaches zero.
func (l *Latch) Await(t *Thread) {
	t.MonitorEnter(l.obj)
	defer t.MonitorExit(l.obj)
	for {
		n, _ := t.Get(l.obj, l.fCount).(int)
		if n == 0 {
			return
		}
		t.Wait(l.obj)
	}
}
