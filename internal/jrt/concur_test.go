package jrt_test

import (
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/jrt"
)

func TestBarrierPhases(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rt := newDetRuntime(seed)
		const workers, phases = 4, 3
		rt.Run(func(th *jrt.Thread) {
			bar := jrt.NewBarrier(th, workers)
			// Each worker writes its slot each phase; after the barrier
			// every worker reads every slot. Race-free iff the barrier
			// orders phases correctly.
			arr := th.NewArray(workers)
			for i := 0; i < workers; i++ {
				th.Store(arr, i, 0)
			}
			done := jrt.NewLatch(th, workers)
			for w := 0; w < workers; w++ {
				w := w
				th.Spawn(func(u *jrt.Thread) {
					for p := 1; p <= phases; p++ {
						u.Store(arr, w, p)
						bar.Await(u)
						sum := 0
						for i := 0; i < workers; i++ {
							v, _ := u.Load(arr, i).(int)
							sum += v
						}
						if sum != p*workers {
							t.Errorf("seed %d: phase %d sum = %d", seed, p, sum)
						}
						bar.Await(u) // second barrier before next phase's writes
					}
					done.CountDown(u)
				})
			}
			done.Await(th)
		})
		if rs := rt.Races(); len(rs) != 0 {
			t.Fatalf("seed %d: barrier phases raced: %v", seed, rs)
		}
	}
}

func TestSemaphoreMutualExclusion(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rt := newDetRuntime(seed)
		rt.Run(func(th *jrt.Thread) {
			sem := jrt.NewSemaphore(th, 1)
			c := rt.DefineClass("Counter", jrt.FieldDecl{Name: "n"})
			o := th.New(c)
			th.SetField(o, "n", 0)
			done := jrt.NewLatch(th, 3)
			for w := 0; w < 3; w++ {
				th.Spawn(func(u *jrt.Thread) {
					for i := 0; i < 5; i++ {
						sem.Acquire(u)
						n, _ := u.GetField(o, "n").(int)
						u.SetField(o, "n", n+1)
						sem.Release(u)
					}
					done.CountDown(u)
				})
			}
			done.Await(th)
			sem.Acquire(th)
			if n, _ := th.GetField(o, "n").(int); n != 15 {
				t.Errorf("seed %d: n = %d, want 15", seed, n)
			}
			sem.Release(th)
		})
		if rs := rt.Races(); len(rs) != 0 {
			t.Fatalf("seed %d: semaphore-guarded counter raced: %v", seed, rs)
		}
	}
}

// The detector must still catch a race when the semaphore has more than
// one permit (no mutual exclusion).
func TestSemaphoreTwoPermitsRaces(t *testing.T) {
	raced := false
	for seed := int64(0); seed < 30 && !raced; seed++ {
		rt := jrt.NewRuntime(jrt.Config{
			Detector: core.New(),
			Policy:   jrt.Log,
			Mode:     jrt.Deterministic,
			Seed:     seed,
		})
		rt.Run(func(th *jrt.Thread) {
			sem := jrt.NewSemaphore(th, 2)
			c := rt.DefineClass("Counter", jrt.FieldDecl{Name: "n"})
			o := th.New(c)
			th.SetField(o, "n", 0)
			done := jrt.NewLatch(th, 2)
			for w := 0; w < 2; w++ {
				th.Spawn(func(u *jrt.Thread) {
					sem.Acquire(u)
					n, _ := u.GetField(o, "n").(int)
					u.SetField(o, "n", n+1)
					sem.Release(u)
					done.CountDown(u)
				})
			}
			done.Await(th)
		})
		if len(rt.Races()) > 0 {
			raced = true
		}
	}
	if !raced {
		t.Error("no interleaving in 30 seeds exposed the two-permit race")
	}
}

func TestLatchReleasesAllWaiters(t *testing.T) {
	rt := newDetRuntime(4)
	rt.Run(func(th *jrt.Thread) {
		l := jrt.NewLatch(th, 2)
		c := rt.DefineClass("D", jrt.FieldDecl{Name: "v"})
		o := th.New(c)
		th.SetField(o, "v", 0)
		var waiters []*jrt.Thread
		for i := 0; i < 3; i++ {
			waiters = append(waiters, th.Spawn(func(u *jrt.Thread) {
				l.Await(u)
				if v, _ := u.GetField(o, "v").(int); v != 99 {
					t.Errorf("waiter saw v = %v before latch opened", v)
				}
			}))
		}
		th.SetField(o, "v", 99)
		l.CountDown(th)
		l.CountDown(th)
		for _, u := range waiters {
			th.Join(u)
		}
	})
	if rs := rt.Races(); len(rs) != 0 {
		t.Fatalf("latch publication raced: %v", rs)
	}
}

// TestFreeModeStress exercises the free (goroutine) scheduler with the
// Goldilocks engine attached; run with -race to validate the runtime's
// own synchronization.
func TestFreeModeStress(t *testing.T) {
	rt := jrt.NewRuntime(jrt.Config{
		Detector: core.New(),
		Policy:   jrt.Throw,
		Mode:     jrt.Free,
	})
	rt.Run(func(th *jrt.Thread) {
		const workers = 8
		c := rt.DefineClass("Cell", jrt.FieldDecl{Name: "v"})
		shared := th.New(c)
		lock := th.New(rt.DefineClass("L"))
		th.Synchronized(lock, func() { th.SetField(shared, "v", 0) })
		bar := jrt.NewBarrier(th, workers)
		done := jrt.NewLatch(th, workers)
		for w := 0; w < workers; w++ {
			th.Spawn(func(u *jrt.Thread) {
				local := u.New(c)
				for i := 0; i < 100; i++ {
					u.SetField(local, "v", i)
					u.Synchronized(lock, func() {
						n, _ := u.GetField(shared, "v").(int)
						u.SetField(shared, "v", n+1)
					})
				}
				bar.Await(u)
				if n, _ := u.GetField(shared, "v").(int); n != workers*100 {
					// Reading after the barrier without the lock: the
					// barrier orders all increments before all reads.
					t.Errorf("post-barrier read saw %d", n)
				}
				done.CountDown(u)
			})
		}
		done.Await(th)
	})
	if rs := rt.Races(); len(rs) != 0 {
		t.Fatalf("free-mode stress raced: %v", rs)
	}
}

// TestFreeModeRaceDetected: the engine finds a real race under the free
// scheduler too (whichever access loses the per-variable serialization
// reports).
func TestFreeModeRaceDetected(t *testing.T) {
	rt := jrt.NewRuntime(jrt.Config{
		Detector: core.New(),
		Policy:   jrt.Log,
		Mode:     jrt.Free,
	})
	rt.Run(func(th *jrt.Thread) {
		c := rt.DefineClass("D", jrt.FieldDecl{Name: "v"})
		o := th.New(c)
		done := jrt.NewLatch(th, 2)
		for w := 0; w < 2; w++ {
			w := w
			th.Spawn(func(u *jrt.Thread) {
				u.SetField(o, "v", w)
				done.CountDown(u)
			})
		}
		done.Await(th)
	})
	if len(rt.Races()) == 0 {
		t.Error("unsynchronized writers in free mode not reported")
	}
}
