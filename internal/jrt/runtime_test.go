package jrt_test

import (
	"strings"
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/detectors/eraser"
	"goldilocks/internal/jrt"
	"goldilocks/internal/resilience"
)

// newDetRuntime builds a deterministic runtime with a default Goldilocks
// engine.
func newDetRuntime(seed int64) *jrt.Runtime {
	return jrt.NewRuntime(jrt.Config{
		Detector: core.New(),
		Policy:   jrt.Throw,
		Mode:     jrt.Deterministic,
		Seed:     seed,
	})
}

func TestFieldRoundTrip(t *testing.T) {
	rt := newDetRuntime(1)
	rt.Run(func(th *jrt.Thread) {
		c := rt.DefineClass("Point", jrt.FieldDecl{Name: "x"}, jrt.FieldDecl{Name: "y"})
		p := th.New(c)
		th.SetField(p, "x", 3)
		th.SetField(p, "y", "seven")
		if got := th.GetField(p, "x"); got != 3 {
			t.Errorf("x = %v", got)
		}
		if got := th.GetField(p, "y"); got != "seven" {
			t.Errorf("y = %v", got)
		}
		if th.GetField(p, "x") == nil {
			t.Error("second read lost value")
		}
	})
	if rs := rt.Races(); len(rs) != 0 {
		t.Errorf("single-threaded program raced: %v", rs)
	}
}

func TestArrayRoundTripAndBounds(t *testing.T) {
	rt := newDetRuntime(1)
	rt.Run(func(th *jrt.Thread) {
		a := th.NewArray(4)
		if a.Len() != 4 || !a.IsArray() {
			t.Fatalf("array metadata wrong: %v", a)
		}
		for i := 0; i < 4; i++ {
			th.Store(a, i, i*i)
		}
		if got := th.Load(a, 3); got != 9 {
			t.Errorf("a[3] = %v", got)
		}
		func() {
			defer func() {
				if _, ok := recover().(*jrt.IndexOutOfBounds); !ok {
					t.Error("out-of-bounds access did not panic with IndexOutOfBounds")
				}
			}()
			th.Load(a, 4)
		}()
	})
}

func TestMonitorReentrancy(t *testing.T) {
	rt := newDetRuntime(1)
	rt.Run(func(th *jrt.Thread) {
		c := rt.DefineClass("L")
		o := th.New(c)
		th.MonitorEnter(o)
		th.MonitorEnter(o)
		if !th.HoldsMonitor(o) {
			t.Error("owner not recorded")
		}
		th.MonitorExit(o)
		if !th.HoldsMonitor(o) {
			t.Error("inner exit released the monitor")
		}
		th.MonitorExit(o)
		if th.HoldsMonitor(o) {
			t.Error("monitor still held after outer exit")
		}
	})
}

func TestIllegalMonitorState(t *testing.T) {
	rt := newDetRuntime(1)
	rt.Run(func(th *jrt.Thread) {
		o := th.New(rt.DefineClass("L"))
		defer func() {
			if _, ok := recover().(*jrt.IllegalMonitorState); !ok {
				t.Error("exit of unowned monitor did not panic")
			}
		}()
		th.MonitorExit(o)
	})
}

func TestDataRaceExceptionThrownAndCaught(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rt := newDetRuntime(seed)
		caught := 0
		rt.Run(func(th *jrt.Thread) {
			c := rt.DefineClass("D", jrt.FieldDecl{Name: "v"})
			o := th.New(c)
			th.SetField(o, "v", 0)
			u := th.Spawn(func(u *jrt.Thread) {
				if e := u.Try(func() { u.SetField(o, "v", 1) }); e != nil {
					caught++
				}
			})
			if e := th.Try(func() { th.SetField(o, "v", 2) }); e != nil {
				caught++
			}
			th.Join(u)
		})
		// Exactly one of the two unsynchronized writers observes the
		// race (whichever runs second), on every interleaving.
		if caught != 1 {
			t.Errorf("seed %d: caught %d DataRaceExceptions, want 1", seed, caught)
		}
		if rt.Stats().RacesThrown != 1 {
			t.Errorf("seed %d: RacesThrown = %d", seed, rt.Stats().RacesThrown)
		}
	}
}

func TestLockHandoffNoException(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rt := newDetRuntime(seed)
		rt.Run(func(th *jrt.Thread) {
			c := rt.DefineClass("D", jrt.FieldDecl{Name: "v"})
			o := th.New(c)
			lock := th.New(rt.DefineClass("L"))
			u := th.Spawn(func(u *jrt.Thread) {
				u.Synchronized(lock, func() {
					n, _ := u.GetField(o, "v").(int)
					u.SetField(o, "v", n+1)
				})
			})
			th.Synchronized(lock, func() {
				n, _ := th.GetField(o, "v").(int)
				th.SetField(o, "v", n+1)
			})
			th.Join(u)
			if n, _ := th.GetField(o, "v").(int); n != 2 {
				t.Errorf("seed %d: v = %d, want 2", seed, n)
			}
		})
		if rs := rt.Races(); len(rs) != 0 {
			t.Errorf("seed %d: lock-guarded program raced: %v", seed, rs)
		}
	}
}

func TestVolatilePublication(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rt := newDetRuntime(seed)
		rt.Run(func(th *jrt.Thread) {
			c := rt.DefineClass("Box",
				jrt.FieldDecl{Name: "data"},
				jrt.FieldDecl{Name: "ready", Volatile: true},
			)
			o := th.New(c)
			th.SetVolatile(o, c.MustFieldID("ready"), false)
			u := th.Spawn(func(u *jrt.Thread) {
				u.AwaitVolatile(o, c.MustFieldID("ready"), func(v jrt.Value) bool {
					b, _ := v.(bool)
					return b
				})
				if got := u.GetField(o, "data"); got != 42 {
					t.Errorf("seed %d: consumer saw %v", seed, got)
				}
			})
			th.SetField(o, "data", 42)
			th.SetVolatile(o, c.MustFieldID("ready"), true)
			th.Join(u)
		})
		if rs := rt.Races(); len(rs) != 0 {
			t.Errorf("seed %d: volatile publication raced: %v", seed, rs)
		}
	}
}

func TestWaitNotifyProducerConsumer(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rt := newDetRuntime(seed)
		var got []int
		rt.Run(func(th *jrt.Thread) {
			c := rt.DefineClass("Q", jrt.FieldDecl{Name: "item"}, jrt.FieldDecl{Name: "full"})
			q := th.New(c)
			th.Synchronized(q, func() { th.SetField(q, "full", false) })
			consumer := th.Spawn(func(u *jrt.Thread) {
				for i := 0; i < 5; i++ {
					u.MonitorEnter(q)
					for {
						full, _ := u.GetField(q, "full").(bool)
						if full {
							break
						}
						u.Wait(q)
					}
					v, _ := u.GetField(q, "item").(int)
					got = append(got, v)
					u.SetField(q, "full", false)
					u.NotifyAll(q)
					u.MonitorExit(q)
				}
			})
			for i := 0; i < 5; i++ {
				th.MonitorEnter(q)
				for {
					full, _ := th.GetField(q, "full").(bool)
					if !full {
						break
					}
					th.Wait(q)
				}
				th.SetField(q, "item", i*10)
				th.SetField(q, "full", true)
				th.NotifyAll(q)
				th.MonitorExit(q)
			}
			th.Join(consumer)
		})
		if len(got) != 5 {
			t.Fatalf("seed %d: consumed %v", seed, got)
		}
		for i, v := range got {
			if v != i*10 {
				t.Errorf("seed %d: got[%d] = %d", seed, i, v)
			}
		}
		if rs := rt.Races(); len(rs) != 0 {
			t.Errorf("seed %d: producer/consumer raced: %v", seed, rs)
		}
	}
}

func TestForkJoinOrdering(t *testing.T) {
	rt := newDetRuntime(3)
	rt.Run(func(th *jrt.Thread) {
		c := rt.DefineClass("D", jrt.FieldDecl{Name: "v"})
		o := th.New(c)
		th.SetField(o, "v", 1) // pre-fork write
		u := th.Spawn(func(u *jrt.Thread) {
			n, _ := u.GetField(o, "v").(int)
			u.SetField(o, "v", n+1)
		})
		th.Join(u)
		if n, _ := th.GetField(o, "v").(int); n != 2 {
			t.Errorf("v = %d", n)
		}
	})
	if rs := rt.Races(); len(rs) != 0 {
		t.Errorf("fork/join chain raced: %v", rs)
	}
}

func TestNoCheckFieldSkipsDetection(t *testing.T) {
	rt := newDetRuntime(5)
	rt.Run(func(th *jrt.Thread) {
		c := rt.DefineClass("D", jrt.FieldDecl{Name: "v", NoCheck: true})
		o := th.New(c)
		u := th.Spawn(func(u *jrt.Thread) { u.SetField(o, "v", 1) })
		th.SetField(o, "v", 2) // an actual race, but checking is off
		th.Join(u)
	})
	if rs := rt.Races(); len(rs) != 0 {
		t.Errorf("NoCheck field was checked: %v", rs)
	}
	st := rt.Stats()
	if st.CheckedAccesses != 0 {
		t.Errorf("CheckedAccesses = %d, want 0", st.CheckedAccesses)
	}
	if st.TotalAccesses < 2 {
		t.Errorf("TotalAccesses = %d", st.TotalAccesses)
	}
}

func TestStatsAccounting(t *testing.T) {
	rt := newDetRuntime(5)
	rt.Run(func(th *jrt.Thread) {
		c := rt.DefineClass("D", jrt.FieldDecl{Name: "a"}, jrt.FieldDecl{Name: "b"})
		o := th.New(c)
		th.SetField(o, "a", 1)
		th.GetField(o, "a")
		arr := th.NewArray(10)
		th.Store(arr, 0, 1)
		th.LoadUnchecked(arr, 0)
	})
	st := rt.Stats()
	if st.VarsCreated != 12 { // 2 fields + 10 elements
		t.Errorf("VarsCreated = %d, want 12", st.VarsCreated)
	}
	if st.TotalAccesses != 4 {
		t.Errorf("TotalAccesses = %d, want 4", st.TotalAccesses)
	}
	if st.CheckedAccesses != 3 {
		t.Errorf("CheckedAccesses = %d, want 3", st.CheckedAccesses)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []string {
		rt := newDetRuntime(seed)
		var order []string
		rt.Run(func(th *jrt.Thread) {
			c := rt.DefineClass("D", jrt.FieldDecl{Name: "v"})
			o := th.New(c)
			lock := th.New(rt.DefineClass("L"))
			th.Synchronized(lock, func() { th.SetField(o, "v", 0) })
			var ts []*jrt.Thread
			for i := 0; i < 3; i++ {
				name := string(rune('A' + i))
				ts = append(ts, th.Spawn(func(u *jrt.Thread) {
					u.Synchronized(lock, func() {
						order = append(order, name)
					})
				}))
			}
			for _, u := range ts {
				th.Join(u)
			}
		})
		return order
	}
	a, b := run(7), run(7)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("runs incomplete: %v %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	// Different seeds should eventually produce a different order.
	diff := false
	for seed := int64(8); seed < 40 && !diff; seed++ {
		c := run(seed)
		for i := range a {
			if c[i] != a[i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("32 different seeds all produced the identical schedule")
	}
}

func TestSerializeAdapterWithEraser(t *testing.T) {
	rt := jrt.NewRuntime(jrt.Config{
		Detector: jrt.Serialize(eraser.New()),
		Policy:   jrt.Log,
		Mode:     jrt.Deterministic,
		Seed:     1,
	})
	rt.Run(func(th *jrt.Thread) {
		c := rt.DefineClass("D", jrt.FieldDecl{Name: "v"})
		o := th.New(c)
		u := th.Spawn(func(u *jrt.Thread) { u.SetField(o, "v", 1) })
		th.Join(u)
		th.SetField(o, "v", 2) // ordered by join: Goldilocks-clean, but
		// Eraser's lock discipline alarms (no common lock).
	})
	if len(rt.Races()) == 0 {
		t.Error("Eraser behind the Serialize adapter reported nothing")
	}
}

func TestLogPolicyContinues(t *testing.T) {
	rt := jrt.NewRuntime(jrt.Config{
		Detector: core.New(),
		Policy:   jrt.Log,
		Mode:     jrt.Deterministic,
		Seed:     2,
	})
	completed := false
	rt.Run(func(th *jrt.Thread) {
		c := rt.DefineClass("D", jrt.FieldDecl{Name: "v"})
		o := th.New(c)
		u := th.Spawn(func(u *jrt.Thread) { u.SetField(o, "v", 1) })
		th.SetField(o, "v", 2)
		th.Join(u)
		completed = true
	})
	if !completed {
		t.Error("Log policy interrupted execution")
	}
	if len(rt.Races()) == 0 {
		t.Error("race not recorded under Log policy")
	}
	if rt.Stats().RacesThrown != 0 {
		t.Error("Log policy threw")
	}
}

// TestDeadlockDetection: the deterministic scheduler reports a deadlock
// as a structured resilience.Report instead of hanging (or crashing the
// process) when every thread blocks.
func TestDeadlockDetection(t *testing.T) {
	rt := newDetRuntime(9)
	rt.Run(func(th *jrt.Thread) {
		a := th.New(rt.DefineClass("A"))
		b := th.New(rt.DefineClass("B"))
		flags := rt.DefineClass("F", jrt.FieldDecl{Name: "bHeld", Volatile: true})
		f := th.New(flags)
		th.SetVolatile(f, 0, false)
		th.MonitorEnter(a) // hold a before u exists: u will block on a
		u := th.Spawn(func(u *jrt.Thread) {
			u.MonitorEnter(b)
			u.SetVolatile(f, 0, true)
			u.MonitorEnter(a) // blocks forever: main holds a
			u.MonitorExit(a)
			u.MonitorExit(b)
		})
		th.AwaitVolatile(f, 0, func(v jrt.Value) bool { held, _ := v.(bool); return held })
		th.MonitorEnter(b) // blocks: u holds b -> guaranteed deadlock
		th.MonitorExit(b)
		th.MonitorExit(a)
		th.Join(u)
	})
	rep := rt.Failure()
	if rep == nil {
		t.Fatal("deadlock not detected")
	}
	if rep.Kind != resilience.Deadlock {
		t.Fatalf("Kind = %v, want Deadlock", rep.Kind)
	}
	if !strings.Contains(rep.Error(), "deadlock") {
		t.Fatalf("Error() = %q, want mention of deadlock", rep.Error())
	}
	if len(rep.Blocked) != 2 {
		t.Fatalf("Blocked = %+v, want both threads", rep.Blocked)
	}
	// Main holds a and waits for b; u holds b and waits for a — each
	// blocked thread should report exactly one held monitor.
	for _, ts := range rep.Blocked {
		if len(ts.Held) != 1 {
			t.Errorf("thread %s holds %v, want exactly one monitor", ts.Thread, ts.Held)
		}
	}
}

// TestWaitWithoutNotifyDeadlocks: a lost-wakeup hangs deterministically
// and is reported as a failure without crashing Run.
func TestWaitWithoutNotifyDeadlocks(t *testing.T) {
	rt := newDetRuntime(3)
	rt.Run(func(th *jrt.Thread) {
		o := th.New(rt.DefineClass("O"))
		th.MonitorEnter(o)
		th.Wait(o) // nobody will ever notify
	})
	rep := rt.Failure()
	if rep == nil {
		t.Fatal("lost wakeup not reported as deadlock")
	}
	if rep.Kind != resilience.Deadlock {
		t.Fatalf("Kind = %v, want Deadlock", rep.Kind)
	}
}

// TestDisableArrayAfterRace: the paper's measurement policy — a race on
// any element turns off checks for the whole array.
func TestDisableArrayAfterRace(t *testing.T) {
	rt := jrt.NewRuntime(jrt.Config{
		Detector:              core.New(),
		Policy:                jrt.Log,
		Mode:                  jrt.Deterministic,
		Seed:                  1,
		DisableArrayAfterRace: true,
	})
	rt.Run(func(th *jrt.Thread) {
		arr := th.NewArray(4)
		u := th.Spawn(func(u *jrt.Thread) {
			for i := 0; i < 4; i++ {
				u.Store(arr, i, i)
			}
		})
		th.Join(u)
		// Unordered with nothing: ordered via join, so seed more racing
		// accesses from a second unjoined thread.
		w := th.Spawn(func(w *jrt.Thread) {
			for i := 0; i < 4; i++ {
				w.Store(arr, i, i*2)
			}
		})
		for i := 0; i < 4; i++ {
			th.Store(arr, i, i*3) // races with w
		}
		th.Join(w)
	})
	// Without widening, up to 4 distinct element races are reported;
	// with it, the first race disables the remaining elements.
	if n := len(rt.Races()); n == 0 || n >= 4 {
		t.Errorf("races = %d, want 1..3 with whole-array disabling", n)
	}
	st := rt.Stats()
	if st.CheckedAccesses >= st.TotalAccesses {
		t.Errorf("no accesses were skipped: checked %d of %d", st.CheckedAccesses, st.TotalAccesses)
	}
}

// TestWaitRestoresReentrantDepth: wait() releases a reentrantly-held
// monitor fully and reacquires it to the same depth.
func TestWaitRestoresReentrantDepth(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rt := newDetRuntime(seed)
		rt.Run(func(th *jrt.Thread) {
			c := rt.DefineClass("Q", jrt.FieldDecl{Name: "ready"})
			q := th.New(c)
			th.Synchronized(q, func() { th.SetField(q, "ready", false) })
			u := th.Spawn(func(u *jrt.Thread) {
				u.Synchronized(q, func() {
					u.SetField(q, "ready", true)
					u.NotifyAll(q)
				})
			})
			th.MonitorEnter(q)
			th.MonitorEnter(q) // depth 2
			for {
				ready, _ := th.GetField(q, "ready").(bool)
				if ready {
					break
				}
				th.Wait(q) // must fully release so u can enter
			}
			if !th.HoldsMonitor(q) {
				t.Fatal("monitor not reacquired after wait")
			}
			th.MonitorExit(q)
			if !th.HoldsMonitor(q) {
				t.Fatal("reentrant depth not restored: one exit released the monitor")
			}
			th.MonitorExit(q)
			if th.HoldsMonitor(q) {
				t.Fatal("monitor still held after matching exits")
			}
			th.Join(u)
		})
		if rs := rt.Races(); len(rs) != 0 {
			t.Fatalf("seed %d: raced: %v", seed, rs)
		}
	}
}

// TestMonitorReleasedOnException: a DataRaceException thrown inside a
// synchronized block unwinds through the deferred MonitorExit, so the
// lock is usable afterwards (Java try-finally semantics).
func TestMonitorReleasedOnException(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rt := newDetRuntime(seed)
		completed := false
		rt.Run(func(th *jrt.Thread) {
			c := rt.DefineClass("D", jrt.FieldDecl{Name: "v"})
			o := th.New(c)
			lock := th.New(rt.DefineClass("L"))
			u := th.Spawn(func(u *jrt.Thread) {
				u.Try(func() { u.SetField(o, "v", 1) }) // racy write
			})
			th.Try(func() {
				th.Synchronized(lock, func() {
					th.SetField(o, "v", 2) // may throw inside the block
				})
			})
			th.Join(u)
			// The monitor must be free regardless of which thread threw.
			th.Synchronized(lock, func() { completed = true })
			if th.HoldsMonitor(lock) {
				t.Fatalf("seed %d: monitor leaked", seed)
			}
		})
		if !completed {
			t.Errorf("seed %d: lock unusable after exception", seed)
		}
	}
}
