package jrt

import (
	"fmt"

	"goldilocks/internal/event"
)

// Chan is a runtime channel: the CSP-style synchronization primitive the
// detection stack models with the chmake/send/recv/close event
// vocabulary. Semantics follow Go: FIFO delivery, blocking send while
// the buffer is full, blocking recv while it is empty and open,
// non-blocking zero-value recv once the channel is drained and closed,
// and a panic on send-to-closed or double-close.
//
// One deliberate approximation (shared with the detectors' conveyor
// model): an unbuffered channel behaves as a single-slot buffer, so a
// send completes as soon as the slot is free rather than waiting for
// its receiver to arrive. The forward edge (send happens-before its
// recv) and the capacity back-edge (recv #k happens-before send #k+W)
// are exact; only the unbuffered reverse rendezvous edge is dropped —
// see docs/ALGORITHM.md.
//
// Channel state transitions and their detector events run atomically
// under the runtime scheduler (same discipline as monitors and volatile
// fields), so the synchronization order the detector observes is the
// order the operations actually took.
type Chan struct {
	addr     event.Addr
	capacity int32
	buf      []Value // in-flight messages, FIFO; guarded by the scheduler
	closed   bool
}

// Addr returns the channel's runtime address (its identity for the
// detector).
func (c *Chan) Addr() event.Addr { return c.addr }

// Cap returns the declared capacity.
func (c *Chan) Cap() int { return int(c.capacity) }

func (c *Chan) width() int {
	if c.capacity > 0 {
		return int(c.capacity)
	}
	return 1
}

// ClosedChannel mirrors Go's run-time panics on misused closed
// channels: a send on a closed channel, or closing one twice.
type ClosedChannel struct {
	Chan   *Chan
	Op     string // "send" or "close"
	Thread event.Tid
}

func (e *ClosedChannel) Error() string {
	return fmt.Sprintf("%s on closed channel o%d by %v", e.Op, e.Chan.addr, e.Thread)
}

// NewChan allocates a channel with the given capacity (0 for
// unbuffered) and reports it to the detector.
func (t *Thread) NewChan(capacity int) *Chan {
	if capacity < 0 || capacity > event.ChanMaxCap {
		panic(fmt.Sprintf("jrt: channel capacity %d out of range", capacity))
	}
	c := &Chan{addr: event.Addr(t.rt.nextAddr.Add(1)), capacity: int32(capacity)}
	t.rt.sched.yield(t)
	t.rt.sched.exec(t, func() bool {
		t.rt.sync(event.ChanMake(t.id, c.addr, c.capacity))
		return true
	})
	return c
}

// Send delivers v into c, blocking while the buffer is full. Sending on
// a closed channel panics with *ClosedChannel, as in Go.
func (t *Thread) Send(c *Chan, v Value) {
	t.rt.sched.yield(t)
	var onClosed bool
	t.rt.sched.exec(t, func() bool {
		if c.closed {
			// Succeed the try-op and panic outside it: a panic inside the
			// attempt would wedge the scheduler's state lock.
			onClosed = true
			return true
		}
		if len(c.buf) >= c.width() {
			return false
		}
		c.buf = append(c.buf, v)
		t.rt.sync(event.ChanSend(t.id, c.addr))
		return true
	})
	if onClosed {
		panic(&ClosedChannel{Chan: c, Op: "send", Thread: t.id})
	}
}

// Recv takes the next message from c, blocking while the channel is
// empty and open. Once the channel is closed and drained, Recv returns
// (nil, false) without blocking — and still creates the happens-before
// edge from the close, exactly as the detectors model it.
func (t *Thread) Recv(c *Chan) (Value, bool) {
	t.rt.sched.yield(t)
	var (
		v  Value
		ok bool
	)
	t.rt.sched.exec(t, func() bool {
		switch {
		case len(c.buf) > 0:
			v, ok = c.buf[0], true
			c.buf = c.buf[1:]
		case c.closed:
			v, ok = nil, false
		default:
			return false
		}
		t.rt.sync(event.ChanRecv(t.id, c.addr))
		return true
	})
	return v, ok
}

// Close closes c, panicking with *ClosedChannel if it is already
// closed. Messages still in flight remain receivable; later receives
// drain to (nil, false).
func (t *Thread) Close(c *Chan) {
	t.rt.sched.yield(t)
	var onClosed bool
	t.rt.sched.exec(t, func() bool {
		if c.closed {
			onClosed = true
			return true
		}
		c.closed = true
		t.rt.sync(event.ChanClose(t.id, c.addr))
		return true
	})
	if onClosed {
		panic(&ClosedChannel{Chan: c, Op: "close", Thread: t.id})
	}
}

// SelectCase is one arm of a Select: a receive from Chan, or, when Send
// is set, a send of Value into it.
type SelectCase struct {
	Chan  *Chan
	Send  bool
	Value Value
}

// Select blocks until one of cases can proceed, performs it, and
// returns its index (plus the received value and ok for a receive arm).
// With hasDefault set it never blocks: when no arm is ready it returns
// (-1, nil, false) immediately and performs NO synchronization — a
// default that fires creates no happens-before edge.
//
// Ready arms are taken in case order (deterministic under the seeded
// scheduler). A ready send arm whose channel is closed panics with
// *ClosedChannel, as the plain Send would.
func (t *Thread) Select(cases []SelectCase, hasDefault bool) (idx int, v Value, ok bool) {
	t.rt.sched.yield(t)
	var closedArm *Chan
	t.rt.sched.exec(t, func() bool {
		for i, sc := range cases {
			c := sc.Chan
			if sc.Send {
				if c.closed {
					// Go panics when a select commits to a closed send arm.
					closedArm, idx = c, i
					return true
				}
				if len(c.buf) >= c.width() {
					continue
				}
				c.buf = append(c.buf, sc.Value)
				t.rt.sync(event.ChanSend(t.id, c.addr))
				idx, v, ok = i, nil, false
				return true
			}
			switch {
			case len(c.buf) > 0:
				v, ok = c.buf[0], true
				c.buf = c.buf[1:]
			case c.closed:
				v, ok = nil, false
			default:
				continue
			}
			t.rt.sync(event.ChanRecv(t.id, c.addr))
			idx = i
			return true
		}
		if hasDefault {
			idx, v, ok = -1, nil, false
			return true
		}
		return false
	})
	if closedArm != nil {
		panic(&ClosedChannel{Chan: closedArm, Op: "send", Thread: t.id})
	}
	return idx, v, ok
}
