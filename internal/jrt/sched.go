package jrt

import (
	"math/rand"
	"sync"
	"time"

	"goldilocks/internal/resilience"
)

// scheduler abstracts how threads interleave. All monitor/join/wait
// state transitions go through exec, whose attempt callback must be a
// try-operation: it either applies its effect and returns true, or
// leaves state untouched and returns false (the scheduler then blocks
// the thread until a retry succeeds).
type scheduler interface {
	// yield is an interleaving point, called before every managed
	// action.
	yield(t *Thread)
	// exec runs attempt atomically with respect to all other runtime
	// state transitions, blocking the thread until it succeeds.
	exec(t *Thread, attempt func() bool)
	// start launches the goroutine for a newly spawned thread.
	start(t *Thread, body func())
	// exited marks t terminated and schedules someone else.
	exited(t *Thread)
	// mainDone is called when the main thread's body returns (the main
	// thread keeps scheduling duties until then).
	mainDone(t *Thread)
	// waitAll blocks until every thread has exited.
	waitAll()
}

// freeSched runs threads as plain goroutines. State transitions are
// serialized by a single mutex; blocked attempts wait on a condition
// variable that is broadcast after every successful transition.
type freeSched struct {
	mu   sync.Mutex
	cond *sync.Cond
	wg   sync.WaitGroup
}

func newFreeSched() *freeSched {
	s := &freeSched{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *freeSched) yield(*Thread) {}

func (s *freeSched) exec(_ *Thread, attempt func() bool) {
	s.mu.Lock()
	for !attempt() {
		s.cond.Wait()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *freeSched) start(_ *Thread, body func()) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		body()
	}()
}

func (s *freeSched) exited(t *Thread) {
	s.exec(t, func() bool { t.terminated = true; return true })
}

func (s *freeSched) mainDone(t *Thread) { s.exited(t) }

func (s *freeSched) waitAll() { s.wg.Wait() }

// Chooser selects scheduling decisions for the deterministic scheduler:
// Choose(n) returns an index in [0, n). The default chooser is a seeded
// RNG; the explore package supplies systematic choosers that enumerate
// the schedule space.
//
// The candidate pool is ordered with the currently-running thread first
// whenever it remains runnable, so index 0 means "continue without
// preempting". A Chooser that additionally implements PreemptAware is
// told whether the current thread is in the pool, which lets it count
// preemptions exactly.
type Chooser interface {
	Choose(n int) int
}

// PreemptAware is an optional Chooser refinement: ChoosePreempt is
// called instead of Choose, with currentRunnable reporting whether
// index 0 is the currently-running thread (so any other choice is a
// preemption) or the switch is forced (the current thread blocked or
// exited).
type PreemptAware interface {
	ChoosePreempt(n int, currentRunnable bool) int
}

type rngChooser struct{ rng *rand.Rand }

func (c rngChooser) Choose(n int) int { return c.rng.Intn(n) }

// detSched is the deterministic cooperative scheduler: exactly one
// thread holds the turn token; at every yield point the holder picks the
// next thread to run through the Chooser. Blocked threads register
// their pending attempt as a predicate that the token holder retries
// when choosing a successor.
type detSched struct {
	choose Chooser
	began  time.Time

	mu       sync.Mutex
	states   map[*Thread]*detState
	order    []*Thread // stable iteration order for determinism
	allDone  chan struct{}
	doneOnce sync.Once
	live     int
	// failure is the structured deadlock report, set at most once. After
	// a failure the scheduler is dead: threads unwinding through it are
	// let through without scheduling.
	failure *resilience.Report
}

type detThreadState uint8

const (
	detReady detThreadState = iota
	detRunning
	detBlocked
	detDone
)

type detState struct {
	st      detThreadState
	turn    chan struct{}
	attempt func() bool // pending try-operation while blocked
}

func newDetSched(seed int64) *detSched {
	return newDetSchedChooser(rngChooser{rng: rand.New(rand.NewSource(seed))})
}

func newDetSchedChooser(c Chooser) *detSched {
	return &detSched{
		choose:  c,
		began:   time.Now(),
		states:  make(map[*Thread]*detState),
		allDone: make(chan struct{}),
	}
}

func (s *detSched) finish() { s.doneOnce.Do(func() { close(s.allDone) }) }

// fail records the first structured failure report, releases waitAll,
// and unwinds the calling goroutine with the report as the panic value.
// Runtime.Run and Thread.Spawn recover it; the remaining (parked)
// goroutines are abandoned — the run is over. Caller holds s.mu.
func (s *detSched) fail(r *resilience.Report) {
	if s.failure == nil {
		s.failure = r
	}
	r = s.failure
	s.finish()
	s.mu.Unlock()
	panic(r)
}

// register adds a thread in the ready state. The main thread registers
// as running (it is born holding the token).
func (s *detSched) register(t *Thread, running bool) *detState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &detState{st: detReady, turn: make(chan struct{}, 1)}
	if running {
		st.st = detRunning
	}
	s.states[t] = st
	s.order = append(s.order, t)
	s.live++
	return st
}

func (s *detSched) yield(t *Thread) {
	s.mu.Lock()
	if s.failure != nil {
		// The run already failed; t is unwinding through deferred
		// cleanup. Scheduling is over — let it proceed.
		s.mu.Unlock()
		return
	}
	self := s.states[t]
	next := s.pick(t)
	if next == t {
		s.mu.Unlock()
		return
	}
	self.st = detReady
	ns := s.states[next]
	ns.st = detRunning
	s.mu.Unlock()
	ns.turn <- struct{}{}
	<-self.turn
}

func (s *detSched) exec(t *Thread, attempt func() bool) {
	// The token holder is exclusive: try directly.
	if attempt() {
		return
	}
	s.mu.Lock()
	if s.failure != nil {
		// Unwinding after a failure and the attempt cannot succeed
		// (nobody will ever change state): re-raise the report so the
		// unwind continues to the recover barrier.
		s.fail(s.failure)
	}
	self := s.states[t]
	self.st = detBlocked
	self.attempt = attempt
	next := s.pick(t)
	if next == nil {
		s.fail(s.deadlockReport())
	}
	if next == t {
		// pick retried our attempt and it succeeded (state changed by a
		// concurrent effect applied during selection); nothing to wait
		// for.
		self.st = detRunning
		s.mu.Unlock()
		return
	}
	ns := s.states[next]
	ns.st = detRunning
	s.mu.Unlock()
	ns.turn <- struct{}{}
	<-self.turn
	// Woken only after the scheduler ran attempt successfully on our
	// behalf.
}

// pick chooses the next thread to run, including t itself. Caller holds
// mu. Blocked candidates have their attempt retried; a successful
// attempt applies its effect and unblocks the thread. The pool is
// ordered with the current thread first when it is still runnable, so
// choice 0 always means "do not preempt".
func (s *detSched) pick(t *Thread) *Thread {
	var pool []*Thread
	currentRunnable := false
	if st, ok := s.states[t]; ok && st.st == detRunning {
		pool = append(pool, t)
		currentRunnable = true
	}
	for _, u := range s.order {
		st := s.states[u]
		if st.st == detReady && u != t {
			pool = append(pool, u)
		}
	}
	// Blocked threads join the candidate pool; their attempt decides at
	// selection time.
	for _, u := range s.order {
		if s.states[u].st == detBlocked {
			pool = append(pool, u)
		}
	}
	for len(pool) > 0 {
		var i int
		if pa, ok := s.choose.(PreemptAware); ok {
			i = pa.ChoosePreempt(len(pool), currentRunnable)
		} else {
			i = s.choose.Choose(len(pool))
		}
		u := pool[i]
		pool = append(pool[:i], pool[i+1:]...)
		if currentRunnable && i == 0 {
			// The running current thread continues; it is always viable.
			return u
		}
		if i == 0 {
			currentRunnable = false // any retry round is a forced switch
		}
		st := s.states[u]
		if st.st == detBlocked {
			// This covers a blocked caller selecting itself: its pending
			// attempt must hold before it may continue.
			if st.attempt() {
				st.attempt = nil
				st.st = detReady
				return u
			}
			continue
		}
		return u
	}
	return nil
}

// deadlockReport builds the structured report: every blocked thread and
// the monitors it holds. Caller holds s.mu.
func (s *detSched) deadlockReport() *resilience.Report {
	r := &resilience.Report{Kind: resilience.Deadlock, Elapsed: time.Since(s.began)}
	for _, u := range s.order {
		st := s.states[u]
		if st.st != detBlocked {
			continue
		}
		ts := resilience.ThreadState{Thread: u.ID().String()}
		for _, o := range u.heldMons {
			ts.Held = append(ts.Held, o.String())
		}
		r.Blocked = append(r.Blocked, ts)
	}
	return r
}

func (s *detSched) start(t *Thread, body func()) {
	st := s.register(t, false)
	go func() {
		<-st.turn
		body()
	}()
}

func (s *detSched) exited(t *Thread) {
	s.mu.Lock()
	self := s.states[t]
	self.st = detDone
	t.terminated = true
	s.live--
	if s.failure != nil {
		// Post-failure unwind: no scheduling left to do.
		if s.live == 0 {
			s.finish()
		}
		s.mu.Unlock()
		return
	}
	if s.live == 0 {
		s.finish()
		s.mu.Unlock()
		return
	}
	next := s.pick(t)
	if next == nil || next == t {
		s.fail(s.deadlockReport())
	}
	ns := s.states[next]
	ns.st = detRunning
	s.mu.Unlock()
	ns.turn <- struct{}{}
}

func (s *detSched) mainDone(t *Thread) { s.exited(t) }

func (s *detSched) waitAll() { <-s.allDone }
