package jrt

import (
	"fmt"

	"goldilocks/internal/event"
)

// MonitorEnter acquires the reentrant monitor of o, blocking while
// another thread owns it. Only the outermost acquire is a
// synchronization action, matching the Java memory model. The state
// transition and the detector event are atomic, so the detector's
// synchronization order agrees with the real lock order.
func (t *Thread) MonitorEnter(o *Object) {
	t.rt.sched.yield(t)
	t.rt.sched.exec(t, func() bool {
		m := &o.mon
		if m.owner != nil && m.owner != t {
			return false
		}
		m.owner = t
		m.depth++
		if m.depth == 1 {
			t.noteMonitorHeld(o.addr)
			t.rt.sync(event.Acquire(t.id, o.addr))
		}
		return true
	})
}

// MonitorExit releases one level of the monitor of o. Releasing a
// monitor the thread does not own panics, mirroring
// IllegalMonitorStateException.
func (t *Thread) MonitorExit(o *Object) {
	t.rt.sched.yield(t)
	t.rt.sched.exec(t, func() bool {
		m := &o.mon
		if m.owner != t {
			panic(&IllegalMonitorState{Object: o, Thread: t.id})
		}
		m.depth--
		if m.depth == 0 {
			m.owner = nil
			t.noteMonitorFreed(o.addr)
			t.rt.sync(event.Release(t.id, o.addr))
		}
		return true
	})
}

// Synchronized runs body while holding the monitor of o (the
// synchronized-block statement).
func (t *Thread) Synchronized(o *Object, body func()) {
	t.MonitorEnter(o)
	defer t.MonitorExit(o)
	body()
}

// IllegalMonitorState mirrors Java's IllegalMonitorStateException.
type IllegalMonitorState struct {
	Object *Object
	Thread event.Tid
}

func (e *IllegalMonitorState) Error() string {
	return fmt.Sprintf("thread %v does not own monitor of %v", e.Thread, e.Object)
}

// Wait implements o.wait(): the caller must own the monitor; it releases
// it fully, sleeps until notified, and reacquires it to the same depth.
// As in the JMM, the release and the reacquire are ordinary
// synchronization actions (which is how Goldilocks handles wait/notify
// with no special rules).
func (t *Thread) Wait(o *Object) {
	t.rt.sched.yield(t)
	var depth int
	t.rt.sched.exec(t, func() bool {
		m := &o.mon
		if m.owner != t {
			panic(&IllegalMonitorState{Object: o, Thread: t.id})
		}
		depth = m.depth
		m.owner = nil
		m.depth = 0
		m.waiting = append(m.waiting, t)
		t.noteMonitorFreed(o.addr)
		t.rt.sync(event.Release(t.id, o.addr))
		return true
	})
	// Sleep until notified and the monitor is free, then reacquire.
	t.rt.sched.exec(t, func() bool {
		m := &o.mon
		if !m.notified[t] {
			return false
		}
		if m.owner != nil {
			return false
		}
		delete(m.notified, t)
		m.owner = t
		m.depth = depth
		t.noteMonitorHeld(o.addr)
		t.rt.sync(event.Acquire(t.id, o.addr))
		return true
	})
}

// Notify wakes one thread waiting on o. The caller must own the monitor.
func (t *Thread) Notify(o *Object) {
	t.rt.sched.yield(t)
	t.rt.sched.exec(t, func() bool {
		m := &o.mon
		if m.owner != t {
			panic(&IllegalMonitorState{Object: o, Thread: t.id})
		}
		if len(m.waiting) > 0 {
			u := m.waiting[0]
			m.waiting = m.waiting[1:]
			m.notified[u] = true
		}
		return true
	})
}

// NotifyAll wakes every thread waiting on o.
func (t *Thread) NotifyAll(o *Object) {
	t.rt.sched.yield(t)
	t.rt.sched.exec(t, func() bool {
		m := &o.mon
		if m.owner != t {
			panic(&IllegalMonitorState{Object: o, Thread: t.id})
		}
		for _, u := range m.waiting {
			m.notified[u] = true
		}
		m.waiting = nil
		return true
	})
}

// HoldsMonitor reports whether t currently owns the monitor of o (test
// support).
func (t *Thread) HoldsMonitor(o *Object) bool {
	held := false
	t.rt.sched.exec(t, func() bool {
		held = o.mon.owner == t
		return true
	})
	return held
}
