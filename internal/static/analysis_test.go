package static_test

import (
	"strings"
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/event"
	"goldilocks/internal/jrt"
	"goldilocks/internal/mj"
	"goldilocks/internal/static"
)

func chordOn(t *testing.T, src string) (*mj.Program, *static.Result) {
	t.Helper()
	prog := mj.MustCheck(src)
	return prog, static.Chord(prog)
}

func rccOn(t *testing.T, src string) (*mj.Program, *static.Result) {
	t.Helper()
	prog := mj.MustCheck(src)
	r, err := static.Rcc(prog)
	if err != nil {
		t.Fatalf("Rcc: %v", err)
	}
	return prog, r
}

const guardedSrc = `
class Counter {
	int n;
	synchronized void inc() { n = n + 1; }
	synchronized int get() { return n; }
}
class Main {
	Counter c;
	void work() { for (int i = 0; i < 5; i = i + 1) { c.inc(); } }
	void main() {
		c = new Counter();
		thread a = spawn this.work();
		thread b = spawn this.work();
		join(a); join(b);
		print(c.get());
	}
}
`

func TestChordGuardedByThis(t *testing.T) {
	_, r := chordOn(t, guardedSrc)
	if !r.SafeFields[static.FieldKey{Class: "Counter", Field: "n"}] {
		t.Error("self-guarded field not proven safe by Chord")
	}
}

func TestRccGuardedByThis(t *testing.T) {
	_, r := rccOn(t, guardedSrc)
	if !r.SafeFields[static.FieldKey{Class: "Counter", Field: "n"}] {
		t.Error("self-guarded field not proven safe by Rcc")
	}
}

const racySrc = `
class D { int v; }
class Main {
	D d;
	void racer() { d.v = 1; }
	void main() {
		d = new D();
		thread t = spawn this.racer();
		d.v = 2;
		join(t);
	}
}
`

func TestRacyFieldNotSafe(t *testing.T) {
	_, rc := chordOn(t, racySrc)
	if rc.SafeFields[static.FieldKey{Class: "D", Field: "v"}] {
		t.Error("Chord marked a racy field safe (unsound)")
	}
	_, rr := rccOn(t, racySrc)
	if rr.SafeFields[static.FieldKey{Class: "D", Field: "v"}] {
		t.Error("Rcc marked a racy field safe (unsound)")
	}
}

// Volatile publication is dynamically race-free, but neither static
// analysis reasons about volatile ordering — the field must stay checked
// (this is exactly the moldyn/raytracer situation with Chord in the
// paper).
func TestVolatileHandshakeStaysChecked(t *testing.T) {
	src := `
class Box { int data; volatile boolean ready; }
class Main {
	Box b;
	void consumer() { while (!b.ready) { } print(b.data); }
	void main() {
		b = new Box();
		thread t = spawn this.consumer();
		b.data = 42;
		b.ready = true;
		join(t);
	}
}
`
	_, r := chordOn(t, src)
	if r.SafeFields[static.FieldKey{Class: "Box", Field: "data"}] {
		t.Error("Chord claims to see through volatile ordering")
	}
}

func TestThreadLocalSafe(t *testing.T) {
	src := `
class D { int v; }
class Main {
	void work() {
		D mine = new D();
		int[] scratch = new int[16];
		for (int i = 0; i < 16; i = i + 1) {
			scratch[i] = i;
			mine.v = mine.v + scratch[i];
		}
	}
	void main() {
		thread a = spawn this.work();
		thread b = spawn this.work();
		join(a); join(b);
	}
}
`
	_, r := chordOn(t, src)
	if got, want := r.SafeSiteCount(), len(r.SafeSites); got != want {
		t.Errorf("thread-local program: %d/%d sites safe", got, want)
	}
	workM := r.Facts.Prog.ClassByName("Main").Method("work")
	if !r.SafeMethods[workM] {
		t.Error("work method not marked safe")
	}
}

func TestEscapingLocalNotSafe(t *testing.T) {
	src := `
class D { int v; }
class Main {
	D shared;
	void racer() { shared.v = 2; }
	void main() {
		D mine = new D();
		shared = mine; // escapes!
		thread t = spawn this.racer();
		mine.v = 1;
		join(t);
	}
}
`
	_, r := chordOn(t, src)
	if r.SafeFields[static.FieldKey{Class: "D", Field: "v"}] {
		t.Error("escaped allocation treated as thread-local")
	}
}

func TestAtomicOnlySafe(t *testing.T) {
	src := `
class Acct { int bal; }
class Main {
	Acct a;
	void mover() { atomic { a.bal = a.bal + 1; } }
	void main() {
		a = new Acct();
		atomic { a.bal = 0; }
		thread t1 = spawn this.mover();
		thread t2 = spawn this.mover();
		join(t1); join(t2);
	}
}
`
	_, r := chordOn(t, src)
	if !r.SafeFields[static.FieldKey{Class: "Acct", Field: "bal"}] {
		t.Error("atomic-only field not proven safe (commit pairs are exempt)")
	}
}

func TestMixedAtomicPlainNotSafe(t *testing.T) {
	src := `
class Acct { int bal; }
class Main {
	Acct a;
	void plainWriter() { a.bal = 7; }
	void main() {
		a = new Acct();
		thread t = spawn this.plainWriter();
		atomic { a.bal = a.bal + 1; }
		join(t);
	}
}
`
	_, r := chordOn(t, src)
	if r.SafeFields[static.FieldKey{Class: "Acct", Field: "bal"}] {
		t.Error("mixed atomic/plain accesses marked safe")
	}
}

func TestSpawnInLoopIsMulti(t *testing.T) {
	src := `
class D { int v; }
class Main {
	D d;
	void work() { d.v = d.v + 1; } // unsynchronized, many workers
	void main() {
		d = new D();
		for (int i = 0; i < 4; i = i + 1) {
			thread t = spawn this.work();
		}
	}
}
`
	_, r := chordOn(t, src)
	if r.SafeFields[static.FieldKey{Class: "D", Field: "v"}] {
		t.Error("loop-spawned workers treated as a single thread")
	}
}

func TestSingleSpawnNotParallelWithItself(t *testing.T) {
	src := `
class D { int v; }
class Main {
	D d;
	void work() { d.v = d.v + 1; }
	void main() {
		d = new D();
		thread t = spawn this.work();
		join(t);
	}
}
`
	// main's own accesses: none after spawn; work's accesses are a single
	// root, single instance: safe.
	_, r := chordOn(t, src)
	if !r.SafeFields[static.FieldKey{Class: "D", Field: "v"}] {
		t.Error("single spawned worker's private accesses not proven safe")
	}
}

func TestRccPragmas(t *testing.T) {
	// trusted pragma accepted.
	_, r := rccOn(t, `
//@ race_free Box.data trusted
class Box { int data; volatile boolean ready; }
class Main {
	Box b;
	void consumer() { while (!b.ready) { } print(b.data); }
	void main() {
		b = new Box();
		thread t = spawn this.consumer();
		b.data = 42;
		b.ready = true;
		join(t);
	}
}
`)
	if !r.SafeFields[static.FieldKey{Class: "Box", Field: "data"}] {
		t.Error("trusted pragma ignored")
	}

	// Verified pragma that does not hold is rejected.
	prog := mj.MustCheck(`
//@ race_free D.v guarded_by_this
class D { int v; }
class Main {
	D d;
	void racer() { d.v = 1; }
	void main() { d = new D(); thread t = spawn this.racer(); d.v = 2; join(t); }
}
`)
	if _, err := static.Rcc(prog); err == nil || !strings.Contains(err.Error(), "does not hold") {
		t.Errorf("bogus guarded_by_this pragma accepted: %v", err)
	}

	// Malformed pragmas are rejected.
	for _, bad := range []string{
		"//@ race_free D.v",
		"//@ race_free Dv trusted",
		"//@ race_free D.v sounds_fine",
	} {
		prog := mj.MustCheck(bad + "\nclass D { int v; }\nclass Main { void main() { } }")
		if _, err := static.Rcc(prog); err == nil {
			t.Errorf("pragma %q accepted", bad)
		}
	}
}

func TestApplySetsFlags(t *testing.T) {
	prog, r := chordOn(t, guardedSrc)
	mask := r.Apply(prog)
	fd := prog.ClassByName("Counter").Field("n")
	if !fd.NoCheck {
		t.Error("Apply did not set field NoCheck")
	}
	anySite := false
	for _, ok := range mask {
		if ok {
			anySite = true
		}
	}
	if !anySite {
		t.Error("Apply produced an empty site mask")
	}
}

// corpus are programs mixing idioms; used for the end-to-end soundness
// property: applying a static result must not suppress the detection of
// any actual race.
var corpus = []string{
	guardedSrc,
	racySrc,
	`
class D { int a; int b; }
class Main {
	D d;
	void w1() { synchronized (d) { d.a = 1; } d.b = 1; }
	void w2() { synchronized (d) { d.a = 2; } d.b = 2; }
	void main() {
		d = new D();
		thread x = spawn this.w1();
		thread y = spawn this.w2();
		join(x); join(y);
	}
}
`,
	`
class Acct { int bal; }
class Main {
	Acct a;
	void txn() { atomic { a.bal = a.bal + 1; } }
	void mixed() { a.bal = 9; }
	void main() {
		a = new Acct();
		thread t1 = spawn this.txn();
		thread t2 = spawn this.mixed();
		join(t1); join(t2);
	}
}
`,
	`
class Main {
	int total;
	void work() {
		int[] mine = new int[8];
		for (int i = 0; i < 8; i = i + 1) { mine[i] = i * i; }
		int s = 0;
		for (int i = 0; i < 8; i = i + 1) { s = s + mine[i]; }
		synchronized (this) { total = total + s; }
	}
	void main() {
		for (int i = 0; i < 3; i = i + 1) { thread t = spawn this.work(); }
	}
}
`,
}

// runWith executes src with the given site mask applied, using the Log
// policy so control flow is identical between runs, and returns the set
// of racy variables.
func runWith(t *testing.T, src string, seed int64, analysis string) map[event.Variable]bool {
	t.Helper()
	prog := mj.MustCheck(src)
	var mask []bool
	switch analysis {
	case "chord":
		mask = static.Chord(prog).Apply(prog)
	case "rcc":
		r, err := static.Rcc(prog)
		if err != nil {
			t.Fatalf("Rcc: %v", err)
		}
		mask = r.Apply(prog)
	}
	rt := jrt.NewRuntime(jrt.Config{Detector: core.New(), Policy: jrt.Log, Mode: jrt.Deterministic, Seed: seed})
	in, err := mj.NewInterp(prog, mj.InterpConfig{Runtime: rt, SiteNoCheck: mask})
	if err != nil {
		t.Fatal(err)
	}
	races, err := in.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := make(map[event.Variable]bool)
	for _, r := range races {
		out[r.Var] = true
	}
	return out
}

// TestStaticEliminationSound: on every corpus program and seed, the
// racy-variable set with static elimination equals the set without it —
// eliminated checks only ever cover race-free accesses.
func TestStaticEliminationSound(t *testing.T) {
	for pi, src := range corpus {
		for seed := int64(0); seed < 10; seed++ {
			full := runWith(t, src, seed, "none")
			for _, analysis := range []string{"chord", "rcc"} {
				got := runWith(t, src, seed, analysis)
				if len(got) != len(full) {
					t.Fatalf("program %d seed %d: %s changed racy vars: %v vs %v", pi, seed, analysis, got, full)
				}
				for v := range full {
					if !got[v] {
						t.Fatalf("program %d seed %d: %s suppressed race on %v", pi, seed, analysis, v)
					}
				}
			}
		}
	}
}
