// Package static provides the ahead-of-time race analyses the paper
// uses to eliminate dynamic checks (Section 5.2): a Chord-style
// automatic may-race access-pair analysis and an RccJava-style
// annotation-checked lock-discipline analysis. Both consume MJ programs
// and emit the same artifact the paper's runtime consumes: the set of
// fields, access sites, and methods that are guaranteed race-free, which
// the interpreter uses to skip dynamic checks.
//
// Substitution note (see DESIGN.md): the real Chord is a context-
// sensitive whole-program analysis over Java bytecode and the real
// RccJava is a type system over annotated Java source. The versions
// here are conservative reimplementations of their decision structure —
// thread-root reachability + may-happen-in-parallel + must-alias lock
// guards + escape analysis for Chord; self-guard/atomic/thread-local
// discipline checks plus trusted annotations for RccJava. Soundness (a
// site is only marked safe if it cannot race) is property-tested against
// the dynamic oracle.
package static

import (
	"goldilocks/internal/mj"
)

// RootID identifies a thread root: root 0 is Main.main; each spawn site
// is its own root (1 + SpawnID).
type RootID int

// Site describes one field or array-element access site.
type Site struct {
	ID    int
	Field FieldKey
	Write bool
	// Method lexically containing the site.
	Method *mj.MethodDecl
	// SelfGuarded: the access receiver's own monitor is held (the
	// must-alias lock pattern: synchronized method accessing this.f, or
	// synchronized(x){ x.f }).
	SelfGuarded bool
	// Atomic: the site is inside an atomic block.
	Atomic bool
	// LocalOnly: the receiver is a non-escaping local allocation, so
	// only the allocating thread can reach the object.
	LocalOnly bool
	// Roots that may execute the site.
	Roots map[RootID]bool
}

// FieldKey names an abstract variable: a class field, or all elements of
// arrays with a given element type.
type FieldKey struct {
	Class string // "[]" for arrays
	Field string // field name, or element type string for arrays
}

func (k FieldKey) String() string { return k.Class + "." + k.Field }

// Facts are the program facts both analyses share.
type Facts struct {
	Prog  *mj.Program
	Sites []*Site
	// RootMulti reports whether a root may have several live instances
	// (a spawn site in a loop or in a multiply-executed method).
	RootMulti map[RootID]bool
	// MethodRoots: which roots may execute each method.
	MethodRoots map[*mj.MethodDecl]map[RootID]bool
	// FieldSites groups sites by abstract variable.
	FieldSites map[FieldKey][]*Site
	// NumSites is the program's total number of access sites.
	NumSites int
}

// BuildFacts computes the shared facts for a checked program.
func BuildFacts(prog *mj.Program) *Facts {
	f := &Facts{
		Prog:        prog,
		RootMulti:   make(map[RootID]bool),
		MethodRoots: make(map[*mj.MethodDecl]map[RootID]bool),
		FieldSites:  make(map[FieldKey][]*Site),
		NumSites:    mj.NumSites(prog),
	}
	f.computeRoots()
	f.collectSites()
	return f
}

// computeRoots propagates thread roots through the (exact) call graph.
// Main.main carries root 0; each spawn site begins a new root at the
// spawned method. A root is multi-instance when its spawn site sits in
// a loop, in a method reachable from a multi root, or in a method
// reachable from two or more roots.
func (f *Facts) computeRoots() {
	mainClass := f.Prog.ClassByName("Main")
	if mainClass == nil {
		return
	}
	mainM := mainClass.Method("main")
	if mainM == nil {
		return
	}

	addRoot := func(m *mj.MethodDecl, r RootID) bool {
		set := f.MethodRoots[m]
		if set == nil {
			set = make(map[RootID]bool)
			f.MethodRoots[m] = set
		}
		if set[r] {
			return false
		}
		set[r] = true
		return true
	}

	// Iterate to a fixpoint: propagate roots through calls, and create
	// new roots at spawns.
	var spawns []spawnSite
	for _, cd := range f.Prog.Classes {
		for _, m := range cd.Methods {
			m := m
			collectSpawns(m.Body, false, func(sp *mj.SpawnExpr, inLoop bool) {
				spawns = append(spawns, spawnSite{site: sp, method: m, inLoop: inLoop})
			})
		}
	}

	addRoot(mainM, 0)
	for changed := true; changed; {
		changed = false
		// Call edges propagate the caller's roots.
		for _, cd := range f.Prog.Classes {
			for _, m := range cd.Methods {
				roots := f.MethodRoots[m]
				if len(roots) == 0 {
					continue
				}
				mj.WalkExprs(m.Body, func(e mj.Expr) {
					call, ok := e.(*mj.CallExpr)
					if !ok || call.Decl == nil {
						return
					}
					if _, isSpawn := spawnTarget(m, call, spawns); isSpawn {
						return // handled through the spawn's own root
					}
					for r := range roots {
						if addRoot(call.Decl, r) {
							changed = true
						}
					}
				})
			}
		}
		// Spawn edges begin fresh roots.
		for _, sp := range spawns {
			if len(f.MethodRoots[sp.method]) == 0 {
				continue // spawn site unreachable
			}
			r := RootID(1 + sp.site.SpawnID)
			if addRoot(sp.site.Call.Decl, r) {
				changed = true
			}
			multi := sp.inLoop
			// A spawn in a method reachable from a multi root, or from
			// more than one root, may execute many times.
			parents := f.MethodRoots[sp.method]
			if len(parents) > 1 {
				multi = true
			}
			for pr := range parents {
				if f.RootMulti[pr] {
					multi = true
				}
				// A spawn inside a spawned method body (not main) is
				// conservatively multi: the parent root itself may
				// denote several threads only if multi, handled above.
				_ = pr
			}
			if multi && !f.RootMulti[r] {
				f.RootMulti[r] = true
				changed = true
			}
		}
	}
}

// spawnSite is a spawn expression with its lexical context.
type spawnSite struct {
	site   *mj.SpawnExpr
	method *mj.MethodDecl // enclosing method
	inLoop bool
}

// spawnTarget reports whether call is the call expression of a spawn in
// method m.
func spawnTarget(m *mj.MethodDecl, call *mj.CallExpr, spawns []spawnSite) (*mj.SpawnExpr, bool) {
	for _, sp := range spawns {
		if sp.method == m && sp.site.Call == call {
			return sp.site, true
		}
	}
	return nil, false
}

// collectSpawns visits spawn expressions with loop context.
func collectSpawns(s mj.Stmt, inLoop bool, visit func(*mj.SpawnExpr, bool)) {
	switch st := s.(type) {
	case *mj.Block:
		for _, sub := range st.Stmts {
			collectSpawns(sub, inLoop, visit)
		}
	case *mj.IfStmt:
		collectSpawns(st.Then, inLoop, visit)
		if st.Else != nil {
			collectSpawns(st.Else, inLoop, visit)
		}
	case *mj.WhileStmt:
		collectSpawns(st.Body, true, visit)
	case *mj.ForStmt:
		collectSpawns(st.Body, true, visit)
	case *mj.SyncStmt:
		collectSpawns(st.Body, inLoop, visit)
	case *mj.AtomicStmt:
		collectSpawns(st.Body, inLoop, visit)
	case *mj.TryStmt:
		collectSpawns(st.Body, inLoop, visit)
		collectSpawns(st.Catch, inLoop, visit)
	case *mj.SelectStmt:
		for _, arm := range st.Arms {
			visitSpawnsExpr(arm.Chan, inLoop, visit)
			visitSpawnsExpr(arm.Value, inLoop, visit)
			collectSpawns(arm.Body, inLoop, visit)
		}
		if st.Default != nil {
			collectSpawns(st.Default, inLoop, visit)
		}
	case *mj.SendStmt:
		visitSpawnsExpr(st.Chan, inLoop, visit)
		visitSpawnsExpr(st.Value, inLoop, visit)
	case *mj.CloseStmt:
		visitSpawnsExpr(st.Chan, inLoop, visit)
	case *mj.VarDeclStmt:
		visitSpawnsExpr(st.Init, inLoop, visit)
	case *mj.AssignStmt:
		visitSpawnsExpr(st.Value, inLoop, visit)
	case *mj.ExprStmt:
		visitSpawnsExpr(st.E, inLoop, visit)
	case *mj.ReturnStmt:
		visitSpawnsExpr(st.Value, inLoop, visit)
	}
}

func visitSpawnsExpr(e mj.Expr, inLoop bool, visit func(*mj.SpawnExpr, bool)) {
	if e == nil {
		return
	}
	if sp, ok := e.(*mj.SpawnExpr); ok {
		visit(sp, inLoop)
	}
	switch ex := e.(type) {
	case *mj.CallExpr:
		for _, a := range ex.Args {
			visitSpawnsExpr(a, inLoop, visit)
		}
	case *mj.BinaryExpr:
		visitSpawnsExpr(ex.L, inLoop, visit)
		visitSpawnsExpr(ex.R, inLoop, visit)
	case *mj.UnaryExpr:
		visitSpawnsExpr(ex.E, inLoop, visit)
	case *mj.RecvExpr:
		visitSpawnsExpr(ex.Chan, inLoop, visit)
	case *mj.MakeChanExpr:
		visitSpawnsExpr(ex.Cap, inLoop, visit)
	}
}
