package static

import (
	"goldilocks/internal/mj"
)

// collectSites walks every method and records its field and array access
// sites with their guard context.
func (f *Facts) collectSites() {
	for _, cd := range f.Prog.Classes {
		for _, m := range cd.Methods {
			locals := analyzeLocals(m)
			sc := &siteCollector{
				facts:  f,
				method: m,
				locals: locals,
			}
			if m.Synchronized {
				sc.held = append(sc.held, "this")
			}
			sc.stmt(m.Body)
		}
	}
}

// localInfo classifies a method's local variables for the escape
// analysis.
type localInfo struct {
	// freshOnly: every value the local ever holds is a new allocation
	// made in this method.
	freshOnly bool
	// escapes: the local's value may become reachable by other threads
	// (stored to a field/array, passed to a call or spawn, returned, or
	// copied to another variable).
	escapes bool
	// reassigned: the local is assigned more than once (disqualifies it
	// as a must-alias lock witness).
	reassigned bool
}

// analyzeLocals runs the intra-method escape/rebind analysis.
func analyzeLocals(m *mj.MethodDecl) map[string]*localInfo {
	locals := make(map[string]*localInfo)
	get := func(name string) *localInfo {
		li, ok := locals[name]
		if !ok {
			li = &localInfo{freshOnly: true}
			locals[name] = li
		}
		return li
	}
	for _, p := range m.Params {
		li := get(p.Name)
		li.freshOnly = false // parameters arrive from outside
		li.escapes = true
	}

	// leak marks every local read inside e as escaping, except when e is
	// exactly a fresh allocation.
	var leak func(e mj.Expr)
	leak = func(e mj.Expr) {
		if e == nil {
			return
		}
		if id, ok := e.(*mj.IdentExpr); ok {
			get(id.Name).escapes = true
			return
		}
		switch ex := e.(type) {
		case *mj.FieldExpr:
			// Reading x.f does not leak x itself.
			markReceiverUse(ex.Recv, get)
		case *mj.IndexExpr:
			markReceiverUse(ex.Arr, get)
			leak(ex.Index)
		case *mj.LenExpr:
			markReceiverUse(ex.Arr, get)
		case *mj.CallExpr:
			leak(ex.Recv)
			for _, a := range ex.Args {
				leak(a)
			}
		case *mj.SpawnExpr:
			leak(ex.Call)
		case *mj.UnaryExpr:
			leak(ex.E)
		case *mj.BinaryExpr:
			leak(ex.L)
			leak(ex.R)
		case *mj.NewArrayExpr:
			leak(ex.Len)
			for _, d := range ex.ExtraDims() {
				leak(d)
			}
		case *mj.RecvExpr:
			leak(ex.Chan)
		case *mj.MakeChanExpr:
			leak(ex.Cap)
		}
	}

	assignTo := func(name string, value mj.Expr, isDecl bool) {
		li := get(name)
		if !isDecl {
			li.reassigned = true
		}
		switch value.(type) {
		case *mj.NewExpr, *mj.NewArrayExpr:
			// Fresh allocation: freshOnly preserved. A multi-dimensional
			// allocation stores inner arrays into the outer one, but
			// those inner arrays are also fresh and only reachable
			// through the outer.
		case nil:
			// Declaration without initializer: zero value is fine.
		default:
			li.freshOnly = false
			leak(value)
		}
	}

	mj.WalkStmts(m.Body, func(s mj.Stmt) {
		switch st := s.(type) {
		case *mj.VarDeclStmt:
			assignTo(st.Name, st.Init, true)
		case *mj.AssignStmt:
			switch target := st.Target.(type) {
			case *mj.IdentExpr:
				assignTo(target.Name, st.Value, false)
			case *mj.FieldExpr:
				markReceiverUse(target.Recv, get)
				leak(st.Value) // stored into the heap: escapes
			case *mj.IndexExpr:
				markReceiverUse(target.Arr, get)
				leak(st.Value)
				leak(target.Index)
			}
		case *mj.ExprStmt:
			leak(st.E)
		case *mj.ReturnStmt:
			leak(st.Value)
		case *mj.IfStmt:
			leak(st.Cond)
		case *mj.WhileStmt:
			leak(st.Cond)
		case *mj.ForStmt:
			leak(st.Cond)
		case *mj.SyncStmt:
			markReceiverUse(st.Lock, get)
		case *mj.WaitStmt:
			markReceiverUse(st.Obj, get)
		case *mj.NotifyStmt:
			markReceiverUse(st.Obj, get)
		case *mj.JoinStmt:
			leak(st.Thread)
		case *mj.PrintStmt:
			for _, a := range st.Args {
				leak(a)
			}
		case *mj.SendStmt:
			// A sent value is published to whichever thread receives it.
			leak(st.Chan)
			leak(st.Value)
		case *mj.CloseStmt:
			leak(st.Chan)
		case *mj.SelectStmt:
			for _, arm := range st.Arms {
				leak(arm.Chan)
				leak(arm.Value)
				if arm.Bind != "" {
					// The binding arrives from another thread: treat it
					// like a parameter.
					li := get(arm.Bind)
					li.freshOnly = false
					li.escapes = true
				}
			}
		}
	})
	return locals
}

// markReceiverUse handles a local used purely as an access receiver or
// lock — a use that does not leak the reference.
func markReceiverUse(e mj.Expr, get func(string) *localInfo) {
	switch ex := e.(type) {
	case *mj.IdentExpr:
		// Receiver position: no escape.
		_ = get(ex.Name)
	case *mj.ThisExpr:
	case nil:
	default:
		// A compound receiver (a.b.c, arr[i]) reads its own parts;
		// conservatively treat inner locals as escaping via leak-like
		// traversal.
		switch inner := e.(type) {
		case *mj.FieldExpr:
			markReceiverUse(inner.Recv, get)
		case *mj.IndexExpr:
			markReceiverUse(inner.Arr, get)
			if id, ok := inner.Index.(*mj.IdentExpr); ok {
				_ = get(id.Name) // int index: harmless
			}
		}
	}
}

// siteCollector walks one method's statements with guard context.
type siteCollector struct {
	facts  *Facts
	method *mj.MethodDecl
	locals map[string]*localInfo
	held   []string // self-guard witnesses currently held ("this" or local names)
	atomic bool
}

func (sc *siteCollector) stmt(s mj.Stmt) {
	switch st := s.(type) {
	case *mj.Block:
		for _, sub := range st.Stmts {
			sc.stmt(sub)
		}
	case *mj.VarDeclStmt:
		sc.expr(st.Init, false)
	case *mj.AssignStmt:
		sc.expr(st.Target, true)
		sc.expr(st.Value, false)
	case *mj.IfStmt:
		sc.expr(st.Cond, false)
		sc.stmt(st.Then)
		if st.Else != nil {
			sc.stmt(st.Else)
		}
	case *mj.WhileStmt:
		sc.expr(st.Cond, false)
		sc.stmt(st.Body)
	case *mj.ForStmt:
		if st.Init != nil {
			sc.stmt(st.Init)
		}
		sc.expr(st.Cond, false)
		if st.Post != nil {
			sc.stmt(st.Post)
		}
		sc.stmt(st.Body)
	case *mj.ReturnStmt:
		sc.expr(st.Value, false)
	case *mj.ExprStmt:
		sc.expr(st.E, false)
	case *mj.SyncStmt:
		sc.expr(st.Lock, false)
		if w, ok := sc.lockWitness(st.Lock); ok {
			sc.held = append(sc.held, w)
			sc.stmt(st.Body)
			sc.held = sc.held[:len(sc.held)-1]
		} else {
			sc.stmt(st.Body)
		}
	case *mj.AtomicStmt:
		sc.atomic = true
		sc.stmt(st.Body)
		sc.atomic = false
	case *mj.TryStmt:
		sc.stmt(st.Body)
		sc.stmt(st.Catch)
	case *mj.WaitStmt:
		sc.expr(st.Obj, false)
	case *mj.NotifyStmt:
		sc.expr(st.Obj, false)
	case *mj.JoinStmt:
		sc.expr(st.Thread, false)
	case *mj.PrintStmt:
		for _, a := range st.Args {
			sc.expr(a, false)
		}
	case *mj.SendStmt:
		sc.expr(st.Chan, false)
		sc.expr(st.Value, false)
	case *mj.CloseStmt:
		sc.expr(st.Chan, false)
	case *mj.SelectStmt:
		// Channel synchronization is not a must-alias lock guard: arm
		// bodies run with the same held set as the select itself.
		for _, arm := range st.Arms {
			sc.expr(arm.Chan, false)
			sc.expr(arm.Value, false)
			sc.stmt(arm.Body)
		}
		if st.Default != nil {
			sc.stmt(st.Default)
		}
	}
}

// lockWitness returns the must-alias witness name for a lock expression:
// "this", or the name of a never-reassigned local.
func (sc *siteCollector) lockWitness(e mj.Expr) (string, bool) {
	switch ex := e.(type) {
	case *mj.ThisExpr:
		return "this", true
	case *mj.IdentExpr:
		if li := sc.locals[ex.Name]; li != nil && !li.reassigned {
			return ex.Name, true
		}
	}
	return "", false
}

func (sc *siteCollector) heldFor(recv mj.Expr) bool {
	w, ok := sc.lockWitness(recv)
	if !ok {
		return false
	}
	for _, h := range sc.held {
		if h == w {
			return true
		}
	}
	return false
}

// localOnly reports whether recv is a non-escaping fresh local.
func (sc *siteCollector) localOnly(recv mj.Expr) bool {
	id, ok := recv.(*mj.IdentExpr)
	if !ok {
		return false
	}
	li := sc.locals[id.Name]
	return li != nil && li.freshOnly && !li.escapes
}

func (sc *siteCollector) expr(e mj.Expr, isWrite bool) {
	if e == nil {
		return
	}
	switch ex := e.(type) {
	case *mj.FieldExpr:
		sc.expr(ex.Recv, false)
		if ex.Decl != nil && !ex.Decl.Volatile {
			recvClass := ""
			if rt := ex.Recv.Type(); rt != nil {
				recvClass = rt.Class
			}
			sc.add(&Site{
				ID:          ex.SiteID,
				Field:       FieldKey{Class: recvClass, Field: ex.Name},
				Write:       isWrite,
				Method:      sc.method,
				SelfGuarded: sc.heldFor(ex.Recv),
				Atomic:      sc.atomic,
				LocalOnly:   sc.localOnly(ex.Recv),
			})
		}
	case *mj.IndexExpr:
		sc.expr(ex.Arr, false)
		sc.expr(ex.Index, false)
		elem := "?"
		if at := ex.Arr.Type(); at != nil && at.Elem != nil {
			elem = at.Elem.String()
		}
		sc.add(&Site{
			ID:          ex.SiteID,
			Field:       FieldKey{Class: "[]", Field: elem},
			Write:       isWrite,
			Method:      sc.method,
			SelfGuarded: sc.heldFor(ex.Arr),
			Atomic:      sc.atomic,
			LocalOnly:   sc.localOnly(ex.Arr),
		})
	case *mj.LenExpr:
		sc.expr(ex.Arr, false)
	case *mj.CallExpr:
		sc.expr(ex.Recv, false)
		for _, a := range ex.Args {
			sc.expr(a, false)
		}
	case *mj.SpawnExpr:
		sc.expr(ex.Call, false)
	case *mj.UnaryExpr:
		sc.expr(ex.E, false)
	case *mj.BinaryExpr:
		sc.expr(ex.L, false)
		sc.expr(ex.R, false)
	case *mj.NewArrayExpr:
		sc.expr(ex.Len, false)
		for _, d := range ex.ExtraDims() {
			sc.expr(d, false)
		}
	case *mj.RecvExpr:
		sc.expr(ex.Chan, false)
	case *mj.MakeChanExpr:
		sc.expr(ex.Cap, false)
	}
}

func (sc *siteCollector) add(s *Site) {
	s.Roots = sc.facts.MethodRoots[sc.method]
	sc.facts.Sites = append(sc.facts.Sites, s)
	sc.facts.FieldSites[s.Field] = append(sc.facts.FieldSites[s.Field], s)
}
