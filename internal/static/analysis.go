package static

import (
	"fmt"
	"strings"

	"goldilocks/internal/mj"
)

// Result is the output both analyses share: which sites, fields, and
// methods are statically guaranteed race-free. Apply installs it into
// the program's NoCheck flags, the form the runtime consumes (the analog
// of the paper's class-file access-flag bits).
type Result struct {
	Analysis string
	// SafeSites is indexed by access-site id.
	SafeSites []bool
	// SafeFields maps abstract variables proven race-free.
	SafeFields map[FieldKey]bool
	// SafeMethods lists methods all of whose sites are safe.
	SafeMethods map[*mj.MethodDecl]bool
	// Facts retained for reporting.
	Facts *Facts
}

// SafeSiteCount returns how many access sites were proven race-free.
func (r *Result) SafeSiteCount() int {
	n := 0
	for _, ok := range r.SafeSites {
		if ok {
			n++
		}
	}
	return n
}

// Apply installs the result into the program AST: field-level NoCheck on
// declarations, site-level NoCheck on access expressions, and
// method-level NoCheck. It returns the per-site mask for
// mj.InterpConfig.SiteNoCheck.
func (r *Result) Apply(prog *mj.Program) []bool {
	for key := range r.SafeFields {
		if key.Class == "[]" {
			continue // array safety is site-level only
		}
		if cd := prog.ClassByName(key.Class); cd != nil {
			if fd := cd.Field(key.Field); fd != nil {
				fd.NoCheck = true
			}
		}
	}
	for m := range r.SafeMethods {
		m.NoCheck = true
	}
	for _, cd := range prog.Classes {
		for _, m := range cd.Methods {
			mj.WalkExprs(m.Body, func(e mj.Expr) {
				switch ex := e.(type) {
				case *mj.FieldExpr:
					if ex.SiteID < len(r.SafeSites) && r.SafeSites[ex.SiteID] {
						ex.NoCheck = true
					}
				case *mj.IndexExpr:
					if ex.SiteID < len(r.SafeSites) && r.SafeSites[ex.SiteID] {
						ex.NoCheck = true
					}
				}
			})
		}
	}
	return r.SafeSites
}

// mayRace decides whether two sites on the same abstract variable can
// form an extended race: they conflict (at least one write, and the
// transactional exemption does not apply), they may happen in parallel,
// and no must-alias guard protects the pair.
func (f *Facts) mayRace(a, b *Site) bool {
	// Conflict structure (read/write and transaction cases of the
	// extended-race definition).
	switch {
	case a.Atomic && b.Atomic:
		return false // commit/commit pairs are exempt
	case !a.Write && !b.Write:
		return false // read/read never conflicts
	}
	// A non-escaping fresh allocation is unreachable from any other
	// access path, so its sites cannot race with anything.
	if a.LocalOnly || b.LocalOnly {
		return false
	}
	if !f.mhp(a, b) {
		return false
	}
	// Must-alias lock guard: both sites hold the accessed object's own
	// monitor.
	if a.SelfGuarded && b.SelfGuarded {
		return false
	}
	return true
}

// mhp reports whether the two sites may execute concurrently: reachable
// from two distinct thread roots, or from one root that may have several
// live instances.
func (f *Facts) mhp(a, b *Site) bool {
	if len(a.Roots) == 0 || len(b.Roots) == 0 {
		return false // unreachable code
	}
	for ra := range a.Roots {
		for rb := range b.Roots {
			if ra != rb {
				return true
			}
			if f.RootMulti[ra] {
				return true
			}
		}
	}
	return false
}

// Chord runs the automatic may-race pair analysis: every pair of sites
// on the same abstract variable is tested with mayRace; sites in no racy
// pair are safe, fields none of whose sites are in a racy pair are safe,
// and methods all of whose sites are safe are safe.
func Chord(prog *mj.Program) *Result {
	facts := BuildFacts(prog)
	r := &Result{
		Analysis:    "chord",
		SafeSites:   make([]bool, facts.NumSites),
		SafeFields:  make(map[FieldKey]bool),
		SafeMethods: make(map[*mj.MethodDecl]bool),
		Facts:       facts,
	}
	racySite := make(map[int]bool)
	racyField := make(map[FieldKey]bool)
	for key, sites := range facts.FieldSites {
		for i, a := range sites {
			for _, b := range sites[i:] {
				if facts.mayRace(a, b) {
					racySite[a.ID] = true
					racySite[b.ID] = true
					racyField[key] = true
				}
			}
		}
	}
	for key := range facts.FieldSites {
		if !racyField[key] {
			r.SafeFields[key] = true
		}
	}
	for _, s := range facts.Sites {
		if !racySite[s.ID] {
			r.SafeSites[s.ID] = true
		}
	}
	markSafeMethods(prog, r)
	return r
}

// Rcc runs the RccJava-style discipline analysis. A field is race-free
// when one of the verified disciplines covers every one of its sites —
// always self-guarded, always transactional, never written, reachable
// from at most one single-instance thread root, or always through
// non-escaping locals — or when a pragma of the form
//
//	//@ race_free <Class>.<field> trusted
//	//@ race_free array:<elemtype> trusted
//
// asserts it (the analog of RccJava's programmer annotations, used in
// the paper for the barrier-phased variables the type system cannot
// express). Pragmas with reason guarded_by_this, atomic_only,
// read_only, or thread_local are verified against the corresponding
// discipline and rejected if they do not hold.
func Rcc(prog *mj.Program) (*Result, error) {
	facts := BuildFacts(prog)
	r := &Result{
		Analysis:    "rcc",
		SafeSites:   make([]bool, facts.NumSites),
		SafeFields:  make(map[FieldKey]bool),
		SafeMethods: make(map[*mj.MethodDecl]bool),
		Facts:       facts,
	}

	trusted := make(map[FieldKey]bool)
	for _, pragma := range prog.Pragmas {
		parts := strings.Fields(pragma.Text)
		if len(parts) == 0 || parts[0] != "race_free" {
			continue
		}
		if len(parts) != 3 {
			return nil, fmt.Errorf("%v: malformed pragma %q (want race_free <target> <reason>)", pragma.Pos, pragma.Text)
		}
		key, err := parseTarget(parts[1])
		if err != nil {
			return nil, fmt.Errorf("%v: %v", pragma.Pos, err)
		}
		reason := parts[2]
		switch reason {
		case "trusted":
			trusted[key] = true
		case "guarded_by_this", "atomic_only", "read_only", "thread_local":
			if !disciplineHolds(facts, key, reason) {
				return nil, fmt.Errorf("%v: pragma %q does not hold", pragma.Pos, pragma.Text)
			}
			trusted[key] = true
		default:
			return nil, fmt.Errorf("%v: unknown pragma reason %q", pragma.Pos, reason)
		}
	}

	for key, sites := range facts.FieldSites {
		if trusted[key] || fieldSafeByDiscipline(facts, sites) {
			r.SafeFields[key] = true
			for _, s := range sites {
				r.SafeSites[s.ID] = true
			}
		}
	}
	// Local-only sites are safe regardless of their field's verdict.
	for _, s := range facts.Sites {
		if s.LocalOnly {
			r.SafeSites[s.ID] = true
		}
	}
	markSafeMethods(prog, r)
	return r, nil
}

func parseTarget(s string) (FieldKey, error) {
	if elem, ok := strings.CutPrefix(s, "array:"); ok {
		return FieldKey{Class: "[]", Field: elem}, nil
	}
	dot := strings.IndexByte(s, '.')
	if dot <= 0 || dot == len(s)-1 {
		return FieldKey{}, fmt.Errorf("malformed pragma target %q", s)
	}
	return FieldKey{Class: s[:dot], Field: s[dot+1:]}, nil
}

func disciplineHolds(facts *Facts, key FieldKey, reason string) bool {
	sites := facts.FieldSites[key]
	if len(sites) == 0 {
		return true
	}
	for _, s := range sites {
		if s.LocalOnly {
			continue
		}
		switch reason {
		case "guarded_by_this":
			if !s.SelfGuarded {
				return false
			}
		case "atomic_only":
			if !s.Atomic {
				return false
			}
		case "read_only":
			if s.Write {
				return false
			}
		case "thread_local":
			if !singleRoot(facts, s) {
				return false
			}
		}
	}
	return true
}

func singleRoot(facts *Facts, s *Site) bool {
	if len(s.Roots) == 0 {
		return true
	}
	if len(s.Roots) > 1 {
		return false
	}
	for r := range s.Roots {
		if facts.RootMulti[r] {
			return false
		}
	}
	return true
}

// fieldSafeByDiscipline checks the automatic disciplines.
func fieldSafeByDiscipline(facts *Facts, sites []*Site) bool {
	for _, reason := range []string{"guarded_by_this", "atomic_only", "read_only"} {
		ok := true
		for _, s := range sites {
			if s.LocalOnly {
				continue
			}
			switch reason {
			case "guarded_by_this":
				ok = ok && s.SelfGuarded
			case "atomic_only":
				ok = ok && s.Atomic
			case "read_only":
				ok = ok && !s.Write
			}
		}
		if ok {
			return true
		}
	}
	// Thread-confinement: all sites from one single-instance root.
	var root RootID = -1
	for _, s := range sites {
		if s.LocalOnly {
			continue
		}
		if !singleRoot(facts, s) {
			return false
		}
		for r := range s.Roots {
			if root == -1 {
				root = r
			} else if root != r {
				return false
			}
		}
	}
	return true
}

// markSafeMethods marks methods whose every access site is safe.
func markSafeMethods(prog *mj.Program, r *Result) {
	for _, cd := range prog.Classes {
		for _, m := range cd.Methods {
			safe := true
			any := false
			mj.WalkExprs(m.Body, func(e mj.Expr) {
				var id int
				switch ex := e.(type) {
				case *mj.FieldExpr:
					if ex.Decl == nil || ex.Decl.Volatile {
						return
					}
					id = ex.SiteID
				case *mj.IndexExpr:
					id = ex.SiteID
				default:
					return
				}
				any = true
				if id >= len(r.SafeSites) || !r.SafeSites[id] {
					safe = false
				}
			})
			if any && safe {
				r.SafeMethods[m] = true
			}
		}
	}
}
