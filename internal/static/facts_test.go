package static_test

import (
	"testing"

	"goldilocks/internal/mj"
	"goldilocks/internal/static"
)

func facts(t *testing.T, src string) *static.Facts {
	t.Helper()
	return static.BuildFacts(mj.MustCheck(src))
}

func TestRootsThroughCallGraph(t *testing.T) {
	f := facts(t, `
class Helper { int n; void deep() { n = 1; } }
class Main {
	Helper h;
	void mid() { h.deep(); }
	void work() { mid(); }
	void main() {
		h = new Helper();
		thread t = spawn this.work();
		join(t);
	}
}
`)
	prog := f.Prog
	deep := prog.ClassByName("Helper").Method("deep")
	roots := f.MethodRoots[deep]
	if len(roots) != 1 {
		t.Fatalf("deep reachable from %d roots, want 1 (the spawn)", len(roots))
	}
	for r := range roots {
		if r == 0 {
			t.Error("deep attributed to the main root; it is only called from the worker")
		}
		if f.RootMulti[r] {
			t.Error("single spawn in straight-line main marked multi-instance")
		}
	}
	mainM := prog.ClassByName("Main").Method("main")
	if rs := f.MethodRoots[mainM]; len(rs) != 1 || !rs[0] {
		t.Errorf("main roots = %v", rs)
	}
}

func TestRecursiveCallGraphTerminates(t *testing.T) {
	f := facts(t, `
class Main {
	int acc;
	void rec(int n) {
		if (n > 0) { acc = acc + n; rec(n - 1); }
	}
	void main() { rec(5); }
}
`)
	rec := f.Prog.ClassByName("Main").Method("rec")
	if rs := f.MethodRoots[rec]; len(rs) != 1 {
		t.Errorf("recursive method roots = %v", rs)
	}
}

func TestSpawnInLoopMarkedMulti(t *testing.T) {
	f := facts(t, `
class Main {
	int n;
	void work() { n = n + 1; }
	void main() {
		for (int i = 0; i < 3; i = i + 1) {
			thread t = spawn this.work();
		}
	}
}
`)
	multi := false
	for r, m := range f.RootMulti {
		if r != 0 && m {
			multi = true
		}
	}
	if !multi {
		t.Error("loop spawn not marked multi-instance")
	}
}

func TestSpawnInsideBranchesAndTry(t *testing.T) {
	f := facts(t, `
class Main {
	int n;
	void a() { n = 1; }
	void b() { n = 2; }
	void main() {
		if (n == 0) {
			thread t1 = spawn this.a();
		} else {
			try {
				thread t2 = spawn this.b();
			} catch { }
		}
	}
}
`)
	aM := f.Prog.ClassByName("Main").Method("a")
	bM := f.Prog.ClassByName("Main").Method("b")
	if len(f.MethodRoots[aM]) != 1 || len(f.MethodRoots[bM]) != 1 {
		t.Errorf("branch/try spawns not discovered: a=%v b=%v", f.MethodRoots[aM], f.MethodRoots[bM])
	}
	for r := range f.MethodRoots[aM] {
		if f.RootMulti[r] {
			t.Error("if-branch spawn marked multi")
		}
	}
}

func TestUnreachableMethodHasNoRoots(t *testing.T) {
	f := facts(t, `
class Main {
	int n;
	void dead() { n = 9; }
	void main() { n = 1; }
}
`)
	dead := f.Prog.ClassByName("Main").Method("dead")
	if rs := f.MethodRoots[dead]; len(rs) != 0 {
		t.Errorf("unreachable method has roots %v", rs)
	}
	// Its sites are trivially safe under Chord.
	r := static.Chord(f.Prog)
	for _, s := range f.Sites {
		if s.Method == dead && !r.SafeSites[s.ID] {
			t.Error("unreachable site not eliminated")
		}
	}
}

func TestLockWitnessRequiresStableLocal(t *testing.T) {
	f := facts(t, `
class D { int v; }
class Main {
	D a;
	D b;
	void work() {
		D x = a;
		synchronized (x) { x.v = 1; } // stable witness: self-guarded
		x = b;
		synchronized (x) { x.v = 2; } // x reassigned: witness rejected
	}
	void main() {
		a = new D();
		b = new D();
		thread t = spawn this.work();
		thread u = spawn this.work();
		join(t);
		join(u);
	}
}
`)
	selfGuarded := 0
	for _, s := range f.Sites {
		if s.Field.Field == "v" && s.SelfGuarded {
			selfGuarded++
		}
	}
	if selfGuarded != 0 {
		t.Errorf("%d sites self-guarded through a reassigned local (unsound witness)", selfGuarded)
	}
}

func TestEscapeThroughReturnAndArgs(t *testing.T) {
	f := facts(t, `
class D { int v; }
class Main {
	D keep(D x) { return x; }
	void work() {
		D mine = new D();
		D leaked = keep(mine); // escapes via argument
		leaked.v = 1;
		mine.v = 2;
	}
	void main() {
		thread t = spawn this.work();
		thread u = spawn this.work();
	}
}
`)
	for _, s := range f.Sites {
		if s.Field.Field == "v" && s.LocalOnly {
			t.Error("argument-escaped allocation still marked local-only")
		}
	}
}
