// Command racebench regenerates the paper's evaluation artifacts:
// Table 1 (benchmark runtimes and slowdowns), Table 2 (static-analysis
// coverage), Table 3 (transactional Multiset scaling), and the lockset
// evolution traces of Figures 6 and 7.
//
// Usage:
//
//	racebench -table 1 [-full]      # Table 1
//	racebench -table 2 [-full]      # Table 2
//	racebench -table 3 [-ops N]     # Table 3 (threads 5..500)
//	racebench -figure 6             # Figure 6
//	racebench -figure 7             # Figure 7
//	racebench -scale [-scaleout F]  # GOMAXPROCS scalability sweep → JSON
//	racebench -txn [-txnout F]      # transactional commit sweep → JSON
//	racebench -channels [-chanout F] # channels-vs-monitors ladder → JSON
//	racebench -ingest [-ingestout F] # local-vs-remote ingest pipeline → JSON
//	racebench -all [-full]          # everything
//
// Exit codes: 0 success, 2 usage error, 3 runtime failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"goldilocks/internal/bench"
	"goldilocks/internal/obs"
	"goldilocks/internal/resilience"
)

func main() {
	var (
		table      = flag.Int("table", 0, "regenerate table 1, 2, or 3")
		dets       = flag.Bool("detectors", false, "cross-detector comparison (precision + cost)")
		figure     = flag.Int("figure", 0, "regenerate figure 6 or 7")
		all        = flag.Bool("all", false, "regenerate everything")
		full       = flag.Bool("full", false, "full-scale parameters (slower)")
		ops        = flag.Int("ops", 12, "per-thread operations for Table 3")
		scale      = flag.Bool("scale", false, "GOMAXPROCS scalability sweep")
		scaleMS    = flag.Int("scalems", 200, "milliseconds per scale sweep point")
		scaleTo    = flag.String("scaleout", "BENCH_scale.json", "scale sweep JSON output path")
		txn        = flag.Bool("txn", false, "transactional commit sweep (contended vs disjoint vs governed)")
		txnCommits = flag.Int("txncommits", 20, "commits per thread for -txn")
		txnTo      = flag.String("txnout", "BENCH_txn.json", "txn sweep JSON output path")
		ingest     = flag.Bool("ingest", false, "local-vs-remote ingest pipeline benchmark with per-stage latency")
		ingestTo   = flag.String("ingestout", "BENCH_ingest.json", "ingest benchmark JSON output path")
		ingestEvts = flag.Int("ingestevents", 0, "events per session for -ingest (0: default)")
		ingestSess = flag.Int("ingestsessions", 0, "concurrent sessions for -ingest (0: default)")

		chans   = flag.Bool("channels", false, "channels-vs-monitors contention ladder")
		chIters = flag.Int("chaniters", bench.DefaultChannelSweep().Iters, "critical sections per worker for -channels")
		chTo    = flag.String("chanout", "BENCH_channels.json", "channel ladder JSON output path")
		verbose = flag.Bool("v", false, "progress output")
		metrics = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while benchmarks run (e.g. localhost:6060; insecure, bind to localhost)")
	)
	flag.Parse()

	progress := func(string) {}
	if *verbose {
		progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	// The live endpoint exposes the detector rule counters (fed by the
	// scale sweep's engines) and process profiling for every benchmark.
	var tel *obs.Telemetry
	if *metrics != "" {
		tel = obs.NewTelemetry()
		reg := obs.NewRegistry()
		tel.Register(reg)
		srv, err := obs.Serve(*metrics, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "racebench:", err)
			os.Exit(resilience.ExitRuntime)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "racebench: serving metrics on http://%s/metrics\n", srv.Addr())
	}

	ran := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "racebench:", err)
		os.Exit(resilience.ExitRuntime)
	}

	if *all || *table == 1 {
		ran = true
		rows, err := bench.Table1(*full, progress)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable1(rows))
	}
	if *all || *table == 2 {
		ran = true
		rows, err := bench.Table2(*full)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable2(rows))
	}
	if *all || *table == 3 {
		ran = true
		threads := []int{5, 10, 20, 50, 100, 200, 500}
		if !*full {
			threads = []int{5, 10, 20, 50}
		}
		rows, err := bench.Table3(threads, *ops, progress)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable3(rows))
	}
	if *all || *dets {
		ran = true
		rows, err := bench.DetectorComparison(1)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatDetectorComparison(rows))
	}
	if *all || *figure == 6 {
		ran = true
		fmt.Println(bench.Figure6())
	}
	if *all || *figure == 7 {
		ran = true
		fmt.Println(bench.Figure7())
	}
	if *all || *scale {
		ran = true
		procs := []int{1, 2, 4, 8}
		rep := bench.Scale(procs, time.Duration(*scaleMS)*time.Millisecond, tel, progress)
		data, err := bench.MarshalScale(rep)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*scaleTo, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Print(bench.FormatScale(rep))
		fmt.Println("wrote", *scaleTo)
	}
	if *all || *txn {
		ran = true
		rep := bench.Txn(bench.DefaultTxnThreads(*full), *txnCommits, progress)
		data, err := bench.MarshalTxn(rep)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*txnTo, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Print(bench.FormatTxn(rep))
		fmt.Println("wrote", *txnTo)
	}
	if *all || *ingest {
		ran = true
		rep, err := bench.Ingest(bench.IngestConfig{
			Sessions: *ingestSess, Events: *ingestEvts,
		}, progress)
		if err != nil {
			fail(err)
		}
		data, err := bench.MarshalIngest(rep)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*ingestTo, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Print(bench.FormatIngest(rep))
		fmt.Println("wrote", *ingestTo)
	}
	if *all || *chans {
		ran = true
		cfg := bench.DefaultChannelSweep()
		cfg.Iters = *chIters
		rep, err := bench.ChannelSweep(cfg, progress)
		if err != nil {
			fail(err)
		}
		data, err := bench.MarshalChannels(rep)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*chTo, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Print(bench.FormatChannels(rep))
		fmt.Println("wrote", *chTo)
	}
	if !ran {
		flag.Usage()
		os.Exit(resilience.ExitUsage)
	}
}
