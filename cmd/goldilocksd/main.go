// Command goldilocksd is the long-running detection service: many
// client processes stream synchronization events to it over TCP (the
// checksummed goldilocks-stream record format) and receive race
// verdicts with provenance back, one detection engine per session.
//
// With -checkpoint-dir, SIGINT/SIGTERM checkpoints every session's
// engine state before exiting, and the next goldilocksd on the same
// directory restores them: clients reconnect, learn the resume point
// from the welcome message, and continue as if the daemon never
// stopped. See docs/SERVICE.md for the protocol and lifecycle.
//
// With -cluster, the daemon joins a fleet: sessions are consistent-
// hashed across the members, misrouted clients are redirected to the
// owner, every periodic checkpoint is replicated to -replicas ring
// successors, and a member death promotes a follower's replica so the
// session resumes with no lost verdicts. See docs/SERVICE.md.
//
// Exit codes: 0 clean shutdown, 2 usage error, 3 runtime failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"goldilocks/internal/cluster"
	"goldilocks/internal/core"
	"goldilocks/internal/obs"
	"goldilocks/internal/resilience"
	"goldilocks/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:7766", "listen address for detection sessions")
		ckptDir = flag.String("checkpoint-dir", "", "persist sessions here on shutdown and restore them on start (empty: no persistence)")
		metrics = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060; insecure, bind to localhost)")
		queue   = flag.Int("queue", 256, "per-session ingest queue bound; a full queue blocks the producer via TCP backpressure")
		batch   = flag.Int("batch", 64, "actions applied per batch before verdicts are flushed to the client")
		budget  = flag.Int("memory-budget", 0, "per-session event-list cell budget; over it the engine degrades gracefully (0: unbounded)")
		onError = flag.String("on-detector-error", "quarantine", "when a detector check panics: quarantine (drop the variable, keep running) or abort")
		noSC    = flag.Bool("no-shortcircuit", false, "disable the short-circuit checks in session engines (ablation)")
		fastOff = flag.Bool("no-fastpath", false, "disable the epoch fast path in session engines (verdicts are identical either way; ablation)")
		serial  = flag.Bool("serializability", false, "run a conflict-serializability checker per session (transactions and outermost lock-protected spans); the final ack carries the verdict")

		clusterList = flag.String("cluster", "", "comma-separated member list; joins this daemon to the fleet (must include -join)")
		join        = flag.String("join", "", "this node's advertised address in the -cluster list (default: -addr)")
		replicas    = flag.Int("replicas", 2, "checkpoint replicas per session (ring successors); cluster mode only")
		ckptEvery   = flag.Int("checkpoint-every", 4096, "checkpoint (and replicate) each session every N applied actions (0: only at shutdown)")
		probeIvl    = flag.Duration("probe-interval", 500*time.Millisecond, "failure-detector probe interval; cluster mode only")
		probeTmo    = flag.Duration("probe-timeout", time.Second, "failure-detector probe timeout; cluster mode only")
		suspect     = flag.Int("suspect-after", 3, "consecutive probe failures before a peer is declared dead; cluster mode only")

		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logJSON      = flag.Bool("log-json", false, "emit structured JSON log records instead of text")
		traceSample  = flag.Int("trace-sample", 1024, "sample one ingest record in N into pipeline stage histograms (0: tracing off)")
		flightEvents = flag.Int("flight-events", 4096, "flight-recorder ring capacity in events (0: recorder off)")
		flightDir    = flag.String("flight-dir", "", "write incident flight dumps here (default: <checkpoint-dir>/flight; empty without -checkpoint-dir: no dumps)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: goldilocksd [flags]")
		flag.Usage()
		os.Exit(resilience.ExitUsage)
	}
	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldilocksd:", err)
		os.Exit(resilience.ExitUsage)
	}
	cfg := daemonConfig{
		addr: *addr, ckptDir: *ckptDir, metricsAddr: *metrics,
		queue: *queue, batch: *batch, budget: *budget, onError: *onError, noSC: *noSC, noFastPath: *fastOff,
		serial:  *serial,
		cluster: *clusterList, join: *join, replicas: *replicas, ckptEvery: *ckptEvery,
		probe:       cluster.ProbeConfig{Interval: *probeIvl, Timeout: *probeTmo, SuspectAfter: *suspect},
		logger:      obs.NewLogger(os.Stderr, level, *logJSON),
		traceSample: *traceSample, flightEvents: *flightEvents, flightDir: *flightDir,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "goldilocksd:", err)
		os.Exit(resilience.ExitRuntime)
	}
	os.Exit(resilience.ExitClean)
}

type daemonConfig struct {
	addr, ckptDir, metricsAddr string
	queue, batch, budget       int
	onError                    string
	noSC                       bool
	noFastPath                 bool
	serial                     bool
	cluster, join              string
	replicas, ckptEvery        int
	probe                      cluster.ProbeConfig

	logger       *slog.Logger
	traceSample  int
	flightEvents int
	flightDir    string
}

func run(cfg daemonConfig) error {
	errPolicy, err := resilience.ParseErrorPolicy(cfg.onError)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	if cfg.noSC {
		opts.SC1, opts.SC2, opts.SC3, opts.XactSC = false, false, false, false
	}
	if cfg.noFastPath {
		opts.FastPath = false
	}
	opts.OnError = errPolicy
	opts.MemoryBudget = cfg.budget

	reg := obs.NewRegistry()
	log := cfg.logger.With("component", "goldilocksd")
	tracer := obs.NewTracer(cfg.traceSample)
	flight := obs.NewFlightRecorder(cfg.flightEvents)
	flightDir := cfg.flightDir
	if flightDir == "" && cfg.ckptDir != "" {
		flightDir = filepath.Join(cfg.ckptDir, "flight")
	}

	scfg := server.Config{
		Engine:          opts,
		Queue:           cfg.queue,
		Batch:           cfg.batch,
		CheckpointDir:   cfg.ckptDir,
		CheckpointEvery: cfg.ckptEvery,
		Registry:        reg,
		Logger:          cfg.logger,
		Tracer:          tracer,
		Flight:          flight,
		FlightDir:       flightDir,
		Serializability: cfg.serial,
	}

	var node *cluster.Node
	var members []string
	if cfg.cluster != "" {
		for _, m := range strings.Split(cfg.cluster, ",") {
			if m = strings.TrimSpace(m); m != "" {
				members = append(members, m)
			}
		}
		self := cfg.join
		if self == "" {
			self = cfg.addr
		}
		found := false
		for _, m := range members {
			if m == self {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("-join %s is not in the -cluster member list %v", self, members)
		}
		node = cluster.NewNode(cluster.NodeConfig{
			Self:     self,
			Members:  members,
			Replicas: cfg.replicas,
			Probe:    cfg.probe,
			Logger:   cfg.logger,
			Tracer:   tracer,
		})
		defer node.Stop()
		scfg.Advertise = self
		scfg.Router = node
		scfg.OnCheckpoint = node.OnCheckpoint
		scfg.OnDrain = node.OnDrain
		if cfg.ckptDir != "" {
			scfg.ReplicaDir = filepath.Join(cfg.ckptDir, "replicas")
		}
	}

	srv, err := server.New(cfg.addr, scfg)
	if err != nil {
		return err
	}
	log.Info("listening", "addr", srv.Addr(),
		"trace_sample", tracer.SampleEvery(), "flight_events", cfg.flightEvents)
	if node != nil {
		log.Info("cluster member", "self", scfg.Advertise, "members", members, "replicas", cfg.replicas)
	}
	if qs := srv.Quarantined(); len(qs) > 0 {
		for _, q := range qs {
			log.Warn("quarantined corrupt checkpoint", "session", q.Session, "path", q.Path)
		}
	}

	var msrv *obs.Server
	if cfg.metricsAddr != "" {
		msrv, err = obs.Serve(cfg.metricsAddr, reg)
		if err != nil {
			srv.Close()
			return err
		}
		log.Info("serving metrics", "url", fmt.Sprintf("http://%s/metrics", msrv.Addr()))
		if node != nil {
			msrv.Handle("/cluster/metrics", cluster.RollupHandler(members, 0))
			log.Info("serving cluster rollup", "url", fmt.Sprintf("http://%s/cluster/metrics", msrv.Addr()))
		}
	}

	// SIGQUIT dumps the flight recorder and keeps running — the
	// operator's "what just happened" button.
	if flight != nil && flightDir != "" {
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		defer signal.Stop(quit)
		go func() {
			for range quit {
				if path, err := srv.DumpFlight("sigquit"); err != nil {
					log.Warn("flight dump failed", "reason", "sigquit", "err", err)
				} else {
					log.Info("flight recorder dumped", "reason", "sigquit", "path", path)
				}
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Info("signal received, shutting down")

	err = srv.Close()
	if flight != nil && flightDir != "" {
		if path, derr := srv.DumpFlight("shutdown"); derr != nil {
			log.Warn("flight dump failed", "reason", "shutdown", "err", derr)
		} else {
			log.Info("flight recorder dumped", "reason", "shutdown", "path", path)
		}
	}
	if cerr := msrv.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
