// Command goldilocksd is the long-running detection service: many
// client processes stream synchronization events to it over TCP (the
// checksummed goldilocks-stream record format) and receive race
// verdicts with provenance back, one detection engine per session.
//
// With -checkpoint-dir, SIGINT/SIGTERM checkpoints every session's
// engine state before exiting, and the next goldilocksd on the same
// directory restores them: clients reconnect, learn the resume point
// from the welcome message, and continue as if the daemon never
// stopped. See docs/SERVICE.md for the protocol and lifecycle.
//
// Exit codes: 0 clean shutdown, 2 usage error, 3 runtime failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"goldilocks/internal/core"
	"goldilocks/internal/obs"
	"goldilocks/internal/resilience"
	"goldilocks/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:7766", "listen address for detection sessions")
		ckptDir = flag.String("checkpoint-dir", "", "persist sessions here on shutdown and restore them on start (empty: no persistence)")
		metrics = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060; insecure, bind to localhost)")
		queue   = flag.Int("queue", 256, "per-session ingest queue bound; a full queue blocks the producer via TCP backpressure")
		batch   = flag.Int("batch", 64, "actions applied per batch before verdicts are flushed to the client")
		budget  = flag.Int("memory-budget", 0, "per-session event-list cell budget; over it the engine degrades gracefully (0: unbounded)")
		onError = flag.String("on-detector-error", "quarantine", "when a detector check panics: quarantine (drop the variable, keep running) or abort")
		noSC    = flag.Bool("no-shortcircuit", false, "disable the short-circuit checks in session engines (ablation)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: goldilocksd [flags]")
		flag.Usage()
		os.Exit(resilience.ExitUsage)
	}
	if err := run(*addr, *ckptDir, *metrics, *queue, *batch, *budget, *onError, *noSC); err != nil {
		fmt.Fprintln(os.Stderr, "goldilocksd:", err)
		os.Exit(resilience.ExitRuntime)
	}
	os.Exit(resilience.ExitClean)
}

func run(addr, ckptDir, metricsAddr string, queue, batch, budget int, onError string, noSC bool) error {
	errPolicy, err := resilience.ParseErrorPolicy(onError)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	if noSC {
		opts.SC1, opts.SC2, opts.SC3, opts.XactSC = false, false, false, false
	}
	opts.OnError = errPolicy
	opts.MemoryBudget = budget

	reg := obs.NewRegistry()
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "goldilocksd: "+format+"\n", args...)
	}
	srv, err := server.New(addr, server.Config{
		Engine:        opts,
		Queue:         queue,
		Batch:         batch,
		CheckpointDir: ckptDir,
		Registry:      reg,
		Logf:          logf,
	})
	if err != nil {
		return err
	}
	logf("listening on %s", srv.Addr())

	var msrv *obs.Server
	if metricsAddr != "" {
		msrv, err = obs.Serve(metricsAddr, reg)
		if err != nil {
			srv.Close()
			return err
		}
		logf("serving metrics on http://%s/metrics", msrv.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	logf("signal received, shutting down")

	err = srv.Close()
	if cerr := msrv.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
