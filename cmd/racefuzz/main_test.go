package main

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"goldilocks/internal/resilience"
)

func TestExitFor(t *testing.T) {
	if got := exitFor(0, nil); got != resilience.ExitClean {
		t.Errorf("clean: exit %d", got)
	}
	if got := exitFor(2, nil); got != resilience.ExitRace {
		t.Errorf("failures: exit %d", got)
	}
	if got := exitFor(0, errUsage); got != resilience.ExitUsage {
		t.Errorf("usage: exit %d", got)
	}
	if got := exitFor(0, errors.New("boom")); got != resilience.ExitRuntime {
		t.Errorf("runtime: exit %d", got)
	}
}

// TestRunFuzzBatch runs a small deterministic batch end to end and
// checks the coverage report covers every rule row.
func TestRunFuzzBatch(t *testing.T) {
	var out strings.Builder
	failures, err := run(config{n: 150, seed: 1, shrink: true, channels: 2}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("batch found %d divergences:\n%s", failures, out.String())
	}
	s := out.String()
	for _, want := range []string{"150 traces", "rule", "commit", "alloc"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "zero covering traces") {
		t.Errorf("batch left rules uncovered:\n%s", s)
	}
}

// TestRunMutants runs the mutation-testing mode: all mutants caught,
// counterexamples written into the corpus directory.
func TestRunMutants(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	escaped, err := run(config{seed: 1, mutants: true, corpus: dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if escaped != 0 {
		t.Fatalf("%d mutants escaped:\n%s", escaped, out.String())
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if len(files) == 0 {
		t.Fatal("no counterexamples written to corpus dir")
	}
	// The written counterexamples must replay cleanly under the real
	// (unbroken) matrix via -check.
	out.Reset()
	failures, err := run(config{check: true, corpus: dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("corpus replay failed:\n%s", out.String())
	}
}

// TestRunCheckSeedCorpus replays the checked-in seed corpus through the
// CLI path.
func TestRunCheckSeedCorpus(t *testing.T) {
	var out strings.Builder
	failures, err := run(config{check: true, corpus: filepath.Join("..", "..", "internal", "conformance", "testdata")}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("seed corpus failed the matrix:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "passed the matrix") {
		t.Errorf("missing summary line:\n%s", out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out strings.Builder
	if _, err := run(config{n: 0}, &out); !errors.Is(err, errUsage) {
		t.Errorf("n=0: err %v, want usage", err)
	}
	if _, err := run(config{n: 10, files: []string{"x.jsonl"}}, &out); !errors.Is(err, errUsage) {
		t.Errorf("stray args: err %v, want usage", err)
	}
	if _, err := run(config{check: true}, &out); !errors.Is(err, errUsage) {
		t.Errorf("check without corpus: err %v, want usage", err)
	}
}
