// Command racefuzz runs the conformance fuzzing harness from the
// command line: coverage-guided random traces through the full
// differential detector matrix (spec engine, optimized engine with
// serial and concurrent delivery, vector-clock detector, happens-before
// oracle, metamorphic engine variants), with delta-debugging shrinking
// and a content-addressed counterexample corpus on failure.
//
// Usage:
//
//	racefuzz [-n 1000] [-seed 1] [-channels 2] [-corpus dir] [-shrink] [-mutants] [-check file ...]
//
// Modes:
//
//	(default)   fuzz -n traces; print the Figure 5 rule-coverage table;
//	            on divergence, optionally shrink (-shrink) and write the
//	            counterexample into -corpus.
//	-mutants    mutation-test the harness itself: for every droppable
//	            Figure 5 rule, verify that an engine with that rule
//	            disabled is caught and that the witness shrinks small.
//	-check      replay the given corpus files (or every .jsonl in
//	            -corpus when no files are named) through the matrix.
//
// Exit codes: 0 all checks passed, 1 divergence found (or a mutant
// escaped), 2 usage error, 3 runtime failure.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"goldilocks/internal/conformance"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
	"goldilocks/internal/resilience"
	"goldilocks/internal/tracegen"
)

var errUsage = errors.New("usage error")

// exitFor maps a run outcome to the standard exit code: failures
// (divergences, escaped mutants) are "races" of the harness itself.
func exitFor(failures int, err error) int {
	switch {
	case errors.Is(err, errUsage):
		return resilience.ExitUsage
	case err != nil:
		return resilience.ExitRuntime
	case failures > 0:
		return resilience.ExitRace
	default:
		return resilience.ExitClean
	}
}

type config struct {
	n        int
	seed     int64
	steps    int
	threads  int
	txnBias  float64
	channels int
	shrink   bool
	corpus   string
	mutants  bool
	check    bool
	files    []string
}

func main() {
	var cfg config
	flag.IntVar(&cfg.n, "n", 1000, "number of fuzzing iterations")
	flag.Int64Var(&cfg.seed, "seed", 1, "deterministic fuzzing seed")
	flag.IntVar(&cfg.steps, "steps", 0, "trace length (0: generator default)")
	flag.IntVar(&cfg.threads, "threads", 0, "max threads per trace (0: generator default)")
	flag.Float64Var(&cfg.txnBias, "txn-bias", -1, "transaction bias in [0,1] (-1: generator default)")
	flag.IntVar(&cfg.channels, "channels", 2, "channel objects per trace (0: channel-free traces)")
	flag.BoolVar(&cfg.shrink, "shrink", true, "minimize divergent traces with delta debugging")
	flag.StringVar(&cfg.corpus, "corpus", "", "directory for counterexamples (write on failure, read with -check)")
	flag.BoolVar(&cfg.mutants, "mutants", false, "mutation-test the harness against rule-dropped engines")
	flag.BoolVar(&cfg.check, "check", false, "replay corpus files through the matrix instead of fuzzing")
	flag.Parse()
	cfg.files = flag.Args()

	failures, err := run(cfg, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "racefuzz:", err)
	}
	os.Exit(exitFor(failures, err))
}

// run executes the selected mode and returns the number of failures.
func run(cfg config, w io.Writer) (int, error) {
	switch {
	case cfg.check:
		return runCheck(cfg, w)
	case cfg.mutants:
		return runMutants(cfg, w)
	default:
		if len(cfg.files) != 0 {
			return 0, fmt.Errorf("%w: positional arguments need -check", errUsage)
		}
		return runFuzz(cfg, w)
	}
}

func genConfig(cfg config) tracegen.Config {
	gc := tracegen.Default()
	if cfg.steps > 0 {
		gc.Steps = cfg.steps
	}
	if cfg.threads > 0 {
		gc.MaxThreads = cfg.threads
	}
	if cfg.txnBias >= 0 {
		gc.TxnBias = cfg.txnBias
	}
	if cfg.channels > 0 {
		gc.Channels = cfg.channels
	}
	return gc
}

// runFuzz is the default mode: a coverage-guided batch with a rule
// coverage report.
func runFuzz(cfg config, w io.Writer) (int, error) {
	if cfg.n <= 0 {
		return 0, fmt.Errorf("%w: -n must be positive", errUsage)
	}
	f := conformance.NewFuzzer(cfg.seed, genConfig(cfg))
	for i := 0; i < cfg.n; i++ {
		d := f.Step()
		if d == nil {
			continue
		}
		if cfg.shrink {
			d.Trace = conformance.Shrink(d.Trace, func(tr *event.Trace) bool {
				return conformance.Check(tr) != nil
			})
		}
		path := ""
		if cfg.corpus != "" {
			p, err := conformance.WriteCounterexample(cfg.corpus, d.Trace)
			if err != nil {
				return len(f.Failures), err
			}
			path = p
		}
		fmt.Fprint(w, conformance.ReportCounterexample(d, path))
	}

	fmt.Fprintf(w, "racefuzz: %d traces (seed %d): %d racy, %d race-free, %d divergent\n",
		f.Executed, cfg.seed, f.Racy, f.Executed-f.Racy, len(f.Failures))
	fmt.Fprintf(w, "corpus: %d coverage-novel traces, %d signatures\n", f.CorpusSize(), f.NewCoverage())
	fmt.Fprintf(w, "Figure 5 rule coverage:\n")
	fmt.Fprintf(w, "  %-4s %-16s %12s %10s\n", "rule", "name", "fires", "traces")
	zero := 0
	for r := 1; r <= obs.NumRules; r++ {
		fmt.Fprintf(w, "  %-4d %-16s %12d %10d\n", r, obs.RuleName(r), f.RuleFires[r], f.RuleTraces[r])
		if f.RuleTraces[r] == 0 {
			zero++
		}
	}
	if zero > 0 {
		fmt.Fprintf(w, "racefuzz: WARNING: %d rules with zero covering traces\n", zero)
	}
	return len(f.Failures), nil
}

// runMutants verifies the harness catches every droppable rule's
// removal and shrinks the witness.
func runMutants(cfg config, w io.Writer) (int, error) {
	escaped := 0
	for _, rule := range conformance.MutantRules {
		tr, ok := conformance.FindMutantCounterexample(rule, cfg.seed, 500)
		if !ok {
			fmt.Fprintf(w, "rule %d (%-14s): ESCAPED — no counterexample in 500 traces\n", rule, obs.RuleName(rule))
			escaped++
			continue
		}
		path := ""
		if cfg.corpus != "" {
			p, err := conformance.WriteCounterexample(cfg.corpus, tr)
			if err != nil {
				return escaped, err
			}
			path = " -> " + p
		}
		fmt.Fprintf(w, "rule %d (%-14s): caught, shrunk to %d events%s\n", rule, obs.RuleName(rule), tr.Len(), path)
	}
	if escaped == 0 {
		fmt.Fprintf(w, "racefuzz: all %d rule mutants caught\n", len(conformance.MutantRules))
	}
	return escaped, nil
}

// runCheck replays corpus files through the matrix.
func runCheck(cfg config, w io.Writer) (int, error) {
	var entries []conformance.CorpusEntry
	if len(cfg.files) > 0 {
		for _, path := range cfg.files {
			f, err := os.Open(path)
			if err != nil {
				return 0, err
			}
			tr, dropped, err := event.ReadTraceAuto(f)
			f.Close()
			if err != nil {
				return 0, fmt.Errorf("%s: %w", path, err)
			}
			if dropped != 0 {
				return 0, fmt.Errorf("%s: %d corrupt records dropped", path, dropped)
			}
			entries = append(entries, conformance.CorpusEntry{Name: path, Path: path, Trace: tr})
		}
	} else {
		if cfg.corpus == "" {
			return 0, fmt.Errorf("%w: -check needs files or -corpus", errUsage)
		}
		var err error
		entries, err = conformance.LoadCorpus(cfg.corpus)
		if err != nil {
			return 0, err
		}
	}
	if len(entries) == 0 {
		return 0, fmt.Errorf("no traces to check")
	}
	failures := 0
	for _, e := range entries {
		if d := conformance.Check(e.Trace); d != nil {
			failures++
			fmt.Fprintf(w, "%s: FAIL: %v\n%s", e.Name, d, conformance.Describe(d.Trace))
		} else {
			fmt.Fprintf(w, "%s: ok (%d events)\n", e.Name, e.Trace.Len())
		}
	}
	fmt.Fprintf(w, "racefuzz: %d/%d corpus traces passed the matrix\n", len(entries)-failures, len(entries))
	return failures, nil
}
