// Command goldilocks runs an MJ program on the race- and
// transaction-aware runtime: the command-line face of the paper's
// modified JVM.
//
// Usage:
//
//	goldilocks [flags] program.mj
//
// Flags select the detector (goldilocks, vectorclock, eraser, basic, or
// none), the static pre-analysis (none, chord, rcc), the race policy
// (throw or log), and the scheduler (deterministic with a seed, or
// free). On exit it prints the races observed and, with -stats, the
// detector and runtime counters.
package main

import (
	"flag"
	"fmt"
	"os"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/detectors/basic"
	"goldilocks/internal/detectors/eraser"
	"goldilocks/internal/event"
	"goldilocks/internal/explore"
	"goldilocks/internal/hb"
	"goldilocks/internal/jrt"
	"goldilocks/internal/mj"
	"goldilocks/internal/static"
)

func main() {
	var (
		detName  = flag.String("detector", "goldilocks", "race detector: goldilocks, vectorclock, eraser, basic, none")
		analysis = flag.String("static", "none", "static pre-analysis: none, chord, rcc")
		policy   = flag.String("policy", "throw", "on race: throw (DataRaceException) or log")
		sched    = flag.String("sched", "free", "scheduler: free or det")
		seed     = flag.Int64("seed", 1, "seed for the deterministic scheduler")
		stats    = flag.Bool("stats", false, "print runtime and detector statistics")
		noSC     = flag.Bool("no-shortcircuit", false, "disable the short-circuit checks (ablation)")
		record   = flag.String("record", "", "write the observed linearization to this file (replay with cmd/racereplay)")
		exploreN = flag.Int("explore", 0, "systematically explore up to N schedules and report how many race (implies -sched det)")
		exploreP = flag.Int("explore-bound", 0, "preemption bound for -explore (0: unbounded)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: goldilocks [flags] program.mj")
		flag.Usage()
		os.Exit(2)
	}
	if *exploreN > 0 {
		racy, err := exploreSchedules(flag.Arg(0), *exploreN, *exploreP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "goldilocks:", err)
			os.Exit(1)
		}
		if racy > 0 {
			os.Exit(3)
		}
		return
	}
	nraces, err := run(flag.Arg(0), *detName, *analysis, *policy, *sched, *seed, *stats, *noSC, *record)
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldilocks:", err)
		os.Exit(1)
	}
	if nraces > 0 {
		os.Exit(3)
	}
}

// exploreSchedules runs the program under systematic schedule
// exploration and reports the racy/clean split.
func exploreSchedules(path string, maxSchedules, preemptionBound int) (int, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	prog, err := mj.Parse(string(src))
	if err != nil {
		return 0, err
	}
	if err := mj.Check(prog); err != nil {
		return 0, err
	}
	body := func(c jrt.Chooser) int {
		p, err := mj.Parse(string(src))
		if err != nil {
			panic(err)
		}
		if err := mj.Check(p); err != nil {
			panic(err)
		}
		rt := jrt.NewRuntime(jrt.Config{
			Detector: core.New(),
			Policy:   jrt.Log,
			Mode:     jrt.Deterministic,
			Chooser:  c,
		})
		interp, err := mj.NewInterp(p, mj.InterpConfig{Runtime: rt})
		if err != nil {
			panic(err)
		}
		races, err := interp.Run()
		if err != nil {
			panic(err)
		}
		return len(races)
	}
	res := explore.Schedules(explore.Options{MaxSchedules: maxSchedules, PreemptionBound: preemptionBound}, body, nil)
	coverage := "bounded"
	if res.Exhausted {
		coverage = "exhaustive"
	}
	fmt.Printf("explored %d schedules (%s): %d racy, %d race-free\n",
		res.Schedules, coverage, res.Racy, res.Schedules-res.Racy)
	if res.FirstRacy != nil {
		fmt.Printf("first racy schedule decision sequence: %v\n", res.FirstRacy)
	}
	return res.Racy, nil
}

// run executes the program and returns the number of races reported.
func run(path, detName, analysis, policy, sched string, seed int64, stats, noSC bool, recordPath string) (int, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	prog, err := mj.Parse(string(src))
	if err != nil {
		return 0, err
	}
	if err := mj.Check(prog); err != nil {
		return 0, err
	}

	var mask []bool
	switch analysis {
	case "none":
	case "chord":
		r := static.Chord(prog)
		mask = r.Apply(prog)
		fmt.Fprintf(os.Stderr, "chord: %d/%d access sites proven race-free\n", r.SafeSiteCount(), mj.NumSites(prog))
	case "rcc":
		r, err := static.Rcc(prog)
		if err != nil {
			return 0, err
		}
		mask = r.Apply(prog)
		fmt.Fprintf(os.Stderr, "rcc: %d/%d access sites proven race-free\n", r.SafeSiteCount(), mj.NumSites(prog))
	default:
		return 0, fmt.Errorf("unknown static analysis %q", analysis)
	}

	cfg := jrt.Config{}
	var engine *core.Engine
	switch detName {
	case "goldilocks":
		opts := core.DefaultOptions()
		if noSC {
			opts.SC1, opts.SC2, opts.SC3, opts.XactSC = false, false, false, false
		}
		engine = core.NewEngine(opts)
		cfg.Detector = engine
	case "vectorclock":
		cfg.Detector = jrt.Serialize(hb.NewDetector())
	case "eraser":
		cfg.Detector = jrt.Serialize(eraser.New())
	case "basic":
		cfg.Detector = jrt.Serialize(basic.New())
	case "none":
	default:
		return 0, fmt.Errorf("unknown detector %q", detName)
	}
	var recorder *jrt.Recorder
	if recordPath != "" {
		inner := cfg.Detector
		if inner == nil {
			inner = nopDetector{}
		}
		recorder = jrt.Record(inner)
		cfg.Detector = recorder
	}
	switch policy {
	case "throw":
		cfg.Policy = jrt.Throw
	case "log":
		cfg.Policy = jrt.Log
	default:
		return 0, fmt.Errorf("unknown policy %q", policy)
	}
	switch sched {
	case "free":
		cfg.Mode = jrt.Free
	case "det":
		cfg.Mode = jrt.Deterministic
		cfg.Seed = seed
	default:
		return 0, fmt.Errorf("unknown scheduler %q", sched)
	}

	rt := jrt.NewRuntime(cfg)
	interp, err := mj.NewInterp(prog, mj.InterpConfig{Runtime: rt, Out: os.Stdout, SiteNoCheck: mask})
	if err != nil {
		return 0, err
	}
	races, err := interp.Run()
	if err != nil {
		return 0, err
	}

	for _, r := range races {
		fmt.Fprintf(os.Stderr, "race: %v\n", &r)
	}
	for _, u := range rt.Uncaught() {
		fmt.Fprintf(os.Stderr, "uncaught %v (thread terminated)\n", u)
	}
	if stats {
		rs := rt.Stats()
		fmt.Fprintf(os.Stderr, "runtime: %d accesses (%d checked), %d variables, %d sync ops, %d races thrown\n",
			rs.TotalAccesses, rs.CheckedAccesses, rs.VarsCreated, rs.SyncOps, rs.RacesThrown)
		if engine != nil {
			es := engine.Stats()
			fmt.Fprintf(os.Stderr, "goldilocks: %d pair checks, short-circuit %.1f%%, %d full walks over %d cells, %d collections\n",
				es.PairChecks, 100*es.ShortCircuitRate(), es.FullWalks, es.WalkCells, es.Collections)
		}
	}
	if recorder != nil {
		f, err := os.Create(recordPath)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		if err := event.WriteTrace(f, recorder.Trace()); err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "recorded %d actions to %s\n", recorder.Trace().Len(), recordPath)
	}
	return len(races), nil
}

// nopDetector lets -record work with -detector none.
type nopDetector struct{}

func (nopDetector) Sync(event.Action) {}
func (nopDetector) Read(event.Tid, event.Addr, event.FieldID) *detect.Race {
	return nil
}
func (nopDetector) Write(event.Tid, event.Addr, event.FieldID) *detect.Race {
	return nil
}
func (nopDetector) Commit(event.Tid, []event.Variable, []event.Variable) []detect.Race {
	return nil
}
func (nopDetector) Alloc(event.Tid, event.Addr) {}
