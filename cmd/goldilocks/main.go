// Command goldilocks runs an MJ program on the race- and
// transaction-aware runtime: the command-line face of the paper's
// modified JVM.
//
// Usage:
//
//	goldilocks [flags] program.mj
//
// Flags select the detector (goldilocks, vectorclock, eraser, basic, or
// none), the static pre-analysis (none, chord, rcc), the race policy
// (throw or log), and the scheduler (deterministic with a seed, or
// free). On exit it prints the races observed and, with -stats, the
// detector and runtime counters.
//
// Exit codes: 0 clean run, 1 at least one race reported, 2 usage error,
// 3 runtime failure (I/O, parse, or a deterministic-scheduler deadlock).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/detectors/basic"
	"goldilocks/internal/detectors/eraser"
	"goldilocks/internal/detectors/regiontrack"
	"goldilocks/internal/event"
	"goldilocks/internal/explore"
	"goldilocks/internal/hb"
	"goldilocks/internal/jrt"
	"goldilocks/internal/mj"
	"goldilocks/internal/obs"
	"goldilocks/internal/resilience"
	"goldilocks/internal/static"
)

// errUsage marks errors caused by bad flags or arguments so exitFor can
// map them to ExitUsage.
var errUsage = errors.New("usage error")

func usageErrf(format string, a ...any) error {
	return fmt.Errorf("%w: %s", errUsage, fmt.Sprintf(format, a...))
}

// exitFor maps a run outcome to the standard exit code.
func exitFor(nraces int, err error) int {
	switch {
	case errors.Is(err, errUsage):
		return resilience.ExitUsage
	case err != nil:
		return resilience.ExitRuntime
	case nraces > 0:
		return resilience.ExitRace
	default:
		return resilience.ExitClean
	}
}

// runConfig carries the flag settings into run.
type runConfig struct {
	detector string
	static   string
	policy   string
	sched    string
	seed     int64
	stats    bool
	noSC     bool
	fastPath bool // epoch fast path in the goldilocks engine
	record   string
	serial   bool   // record the run and check conflict-serializability
	onError  string // quarantine | abort
	budget   int    // event-list cell budget; 0: unbounded
	remote   string // goldilocksd address; offload detection there
	session  string // session id for -remote
	wireJSON bool   // with -remote: force the line-JSON wire format

	// Observability (docs/OBSERVABILITY.md). Any of these being set
	// enables telemetry; all unset keeps the detector hot path free of
	// instrumentation beyond one nil check per site.
	statsJSON     string        // write the composite stats document here; "-" is stdout
	metricsAddr   string        // serve /metrics, /debug/vars, /debug/pprof here
	metricsLinger time.Duration // keep the metrics endpoint up this long after the run
	traceVars     string        // comma-separated variables to trace locksets for; "all" traces everything
}

func main() {
	var (
		detName  = flag.String("detector", "goldilocks", "race detector: goldilocks, vectorclock, eraser, basic, none")
		analysis = flag.String("static", "none", "static pre-analysis: none, chord, rcc")
		policy   = flag.String("policy", "throw", "on race: throw (DataRaceException) or log")
		sched    = flag.String("sched", "free", "scheduler: free or det")
		seed     = flag.Int64("seed", 1, "seed for the deterministic scheduler")
		stats    = flag.Bool("stats", false, "print runtime and detector statistics")
		noSC     = flag.Bool("no-shortcircuit", false, "disable the short-circuit checks (ablation)")
		fastPath = flag.Bool("fastpath", true, "enable the epoch fast path in the goldilocks engine (verdicts are identical either way; ablation)")
		record   = flag.String("record", "", "write the observed linearization to this file (.jsonl: checksummed streaming format; replay with cmd/racereplay)")
		serial   = flag.Bool("serializability", false, "after the run, check conflict-serializability of its atomic regions (transactions and outermost lock-protected spans); a violation exits like a race")
		onError  = flag.String("on-detector-error", "quarantine", "when a detector check panics: quarantine (drop the variable, keep running) or abort")
		budget   = flag.Int("memory-budget", 0, "event-list cell budget; over it the engine degrades gracefully (0: unbounded)")
		remote   = flag.String("remote", "", "offload detection to the goldilocksd at this address (or comma-separated cluster list, with failover) instead of running an in-process detector (forces -policy log; see docs/SERVICE.md)")
		session  = flag.String("session", "", "session id for -remote (default: goldilocks-<pid>)")
		wire     = flag.String("wire", "auto", "with -remote: wire format, auto (negotiate binary, fall back to JSON) or json (force line-JSON)")
		exploreN = flag.Int("explore", 0, "systematically explore up to N schedules and report how many race (implies -sched det)")
		exploreP = flag.Int("explore-bound", 0, "preemption bound for -explore (0: unbounded)")
		exploreT = flag.Duration("explore-timeout", 0, "wall-clock budget for -explore (0: unbounded)")

		statsJSON  = flag.String("stats-json", "", "write the machine-readable stats document (metrics, races with provenance, runtime counters) to this file; - for stdout")
		metrics    = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address during the run (e.g. localhost:6060; insecure, bind to localhost)")
		linger     = flag.Duration("metrics-linger", 0, "keep the -metrics-addr endpoint up this long after the run (for external scrapers)")
		traceLocks = flag.String("trace-locksets", "", "record lockset transitions for these comma-separated variables (e.g. o10.f0), or \"all\"")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: goldilocks [flags] program.mj")
		flag.Usage()
		os.Exit(resilience.ExitUsage)
	}
	if *wire != "auto" && *wire != "json" {
		fmt.Fprintf(os.Stderr, "goldilocks: unknown -wire %q (auto or json)\n", *wire)
		os.Exit(resilience.ExitUsage)
	}
	if *exploreN > 0 {
		racy, err := exploreSchedules(flag.Arg(0), *exploreN, *exploreP, *exploreT)
		if err != nil {
			fmt.Fprintln(os.Stderr, "goldilocks:", err)
		}
		os.Exit(exitFor(racy, err))
	}
	// SIGINT/SIGTERM cut the post-run linger short (and any other
	// ctx-aware wait) but still run the structured-exit path: stats
	// documents are written, the metrics server shuts down gracefully,
	// and the exit code reflects the run's verdict — not a bare kill.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	nraces, err := run(ctx, flag.Arg(0), runConfig{
		detector: *detName,
		static:   *analysis,
		policy:   *policy,
		sched:    *sched,
		seed:     *seed,
		stats:    *stats,
		noSC:     *noSC,
		fastPath: *fastPath,
		record:   *record,
		serial:   *serial,
		onError:  *onError,
		budget:   *budget,
		remote:   *remote,
		session:  *session,
		wireJSON: *wire == "json",

		statsJSON:     *statsJSON,
		metricsAddr:   *metrics,
		metricsLinger: *linger,
		traceVars:     *traceLocks,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldilocks:", err)
	}
	os.Exit(exitFor(nraces, err))
}

// exploreSchedules runs the program under systematic schedule
// exploration and reports the racy/clean split.
func exploreSchedules(path string, maxSchedules, preemptionBound int, timeout time.Duration) (int, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	prog, err := mj.Parse(string(src))
	if err != nil {
		return 0, err
	}
	if err := mj.Check(prog); err != nil {
		return 0, err
	}
	body := func(c jrt.Chooser) int {
		p, err := mj.Parse(string(src))
		if err != nil {
			panic(err)
		}
		if err := mj.Check(p); err != nil {
			panic(err)
		}
		rt := jrt.NewRuntime(jrt.Config{
			Detector: core.New(),
			Policy:   jrt.Log,
			Mode:     jrt.Deterministic,
			Chooser:  c,
		})
		interp, err := mj.NewInterp(p, mj.InterpConfig{Runtime: rt})
		if err != nil {
			panic(err)
		}
		races, err := interp.Run()
		if err != nil {
			panic(err)
		}
		return len(races)
	}
	res := explore.Schedules(explore.Options{
		MaxSchedules:    maxSchedules,
		PreemptionBound: preemptionBound,
		Timeout:         timeout,
	}, body, nil)
	coverage := "bounded"
	if res.Exhausted {
		coverage = "exhaustive"
	}
	if res.TimedOut {
		coverage = "timed out"
	}
	fmt.Printf("explored %d schedules (%s): %d racy, %d race-free\n",
		res.Schedules, coverage, res.Racy, res.Schedules-res.Racy)
	if res.FirstRacy != nil {
		fmt.Printf("first racy schedule decision sequence: %v\n", res.FirstRacy)
	}
	return res.Racy, nil
}

// run executes the program and returns the number of races reported.
// A cancelled ctx (SIGINT/SIGTERM) cuts interruptible waits short; the
// structured-exit path still runs in full.
func run(ctx context.Context, path string, c runConfig) (int, error) {
	errPolicy, err := resilience.ParseErrorPolicy(c.onError)
	if err != nil {
		return 0, usageErrf("%v", err)
	}

	src, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	prog, err := mj.Parse(string(src))
	if err != nil {
		return 0, err
	}
	if err := mj.Check(prog); err != nil {
		return 0, err
	}

	var mask []bool
	switch c.static {
	case "none":
	case "chord":
		r := static.Chord(prog)
		mask = r.Apply(prog)
		fmt.Fprintf(os.Stderr, "chord: %d/%d access sites proven race-free\n", r.SafeSiteCount(), mj.NumSites(prog))
	case "rcc":
		r, err := static.Rcc(prog)
		if err != nil {
			return 0, err
		}
		mask = r.Apply(prog)
		fmt.Fprintf(os.Stderr, "rcc: %d/%d access sites proven race-free\n", r.SafeSiteCount(), mj.NumSites(prog))
	default:
		return 0, usageErrf("unknown static analysis %q", c.static)
	}

	// Any observability flag switches telemetry on; otherwise tel stays
	// nil and the engine's instrumentation sites reduce to a nil check.
	var tel *obs.Telemetry
	if c.statsJSON != "" || c.metricsAddr != "" || c.traceVars != "" {
		tel = obs.NewTelemetry()
		switch c.traceVars {
		case "":
		case "all":
			tel.Trace.Enable()
		default:
			var names []string
			for _, v := range strings.Split(c.traceVars, ",") {
				if v = strings.TrimSpace(v); v != "" {
					names = append(names, v)
				}
			}
			tel.Trace.Enable(names...)
		}
	}

	cfg := jrt.Config{}
	var engine *core.Engine
	var guard *jrt.Guarded
	var remote *remoteSession
	if c.remote != "" {
		sessionID := c.session
		if sessionID == "" {
			sessionID = fmt.Sprintf("goldilocks-%d", os.Getpid())
		}
		remote, err = dialRemote(c.remote, sessionID, c.wireJSON)
		if err != nil {
			return 0, err
		}
		cfg.Detector = remote
		fmt.Fprintf(os.Stderr, "goldilocks: streaming to %s (session %s)\n", c.remote, sessionID)
	}
	switch {
	case remote != nil: // detection offloaded; -detector does not apply
	case c.detector == "goldilocks":
		opts := core.DefaultOptions()
		if c.noSC {
			opts.SC1, opts.SC2, opts.SC3, opts.XactSC = false, false, false, false
		}
		opts.FastPath = c.fastPath
		opts.OnError = errPolicy
		opts.MemoryBudget = c.budget
		opts.Telemetry = tel
		engine = core.NewEngine(opts)
		cfg.Detector = engine
	case c.detector == "vectorclock":
		guard = jrt.Guard(jrt.Serialize(hb.NewDetector()), errPolicy)
		cfg.Detector = guard
	case c.detector == "eraser":
		guard = jrt.Guard(jrt.Serialize(eraser.New()), errPolicy)
		cfg.Detector = guard
	case c.detector == "basic":
		guard = jrt.Guard(jrt.Serialize(basic.New()), errPolicy)
		cfg.Detector = guard
	case c.detector == "none":
	default:
		return 0, usageErrf("unknown detector %q", c.detector)
	}
	var recorder *jrt.Recorder
	if c.record != "" || c.serial {
		inner := cfg.Detector
		if inner == nil {
			inner = nopDetector{}
		}
		recorder = jrt.Record(inner)
		cfg.Detector = recorder
	}
	switch c.policy {
	case "throw":
		cfg.Policy = jrt.Throw
	case "log":
		cfg.Policy = jrt.Log
	default:
		return 0, usageErrf("unknown policy %q", c.policy)
	}
	if remote != nil && cfg.Policy == jrt.Throw {
		// Remote verdicts arrive asynchronously: there is no way to throw
		// a DataRaceException into the accessing thread from the daemon.
		fmt.Fprintln(os.Stderr, "goldilocks: -remote cannot throw into the accessing thread; using -policy log")
		cfg.Policy = jrt.Log
	}
	switch c.sched {
	case "free":
		cfg.Mode = jrt.Free
	case "det":
		cfg.Mode = jrt.Deterministic
		cfg.Seed = c.seed
	default:
		return 0, usageErrf("unknown scheduler %q", c.sched)
	}

	rt := jrt.NewRuntime(cfg)

	// The registry aggregates every metric source; the live endpoint and
	// the -stats-json document both read from it.
	var reg *obs.Registry
	var sampler *obs.Sampler
	var srv *obs.Server
	if tel != nil {
		reg = obs.NewRegistry()
		if engine != nil {
			engine.RegisterMetrics(reg)
			sampler = engine.StartSampling(reg, time.Second)
		} else {
			tel.Register(reg)
		}
		rt.RegisterMetrics(reg)
		if c.metricsAddr != "" {
			srv, err = obs.Serve(c.metricsAddr, reg)
			if err != nil {
				return 0, err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "goldilocks: serving metrics on http://%s/metrics\n", srv.Addr())
		}
	}

	interp, err := mj.NewInterp(prog, mj.InterpConfig{Runtime: rt, Out: os.Stdout, SiteNoCheck: mask})
	if err != nil {
		return 0, err
	}
	races, err := interp.Run()
	if err != nil {
		return 0, err
	}
	sampler.Stop()
	if remote != nil {
		ack, rerr := remote.finish()
		if rerr != nil {
			return 0, fmt.Errorf("remote session: %w", rerr)
		}
		races = append(races, remote.races()...)
		fmt.Fprintf(os.Stderr, "goldilocks: remote session applied %d actions, %d races\n", ack.Applied, ack.Races)
	}

	for _, r := range races {
		fmt.Fprintf(os.Stderr, "race: %v\n", &r)
		if r.Prov != nil {
			fmt.Fprintf(os.Stderr, "  provenance: %v\n", r.Prov)
		}
	}
	for _, u := range rt.Uncaught() {
		fmt.Fprintf(os.Stderr, "uncaught %v (thread terminated)\n", u)
	}
	if c.stats {
		rs := rt.Stats()
		fmt.Fprintf(os.Stderr, "runtime: %d accesses (%d checked), %d variables, %d sync ops, %d races thrown\n",
			rs.TotalAccesses, rs.CheckedAccesses, rs.VarsCreated, rs.SyncOps, rs.RacesThrown)
		if engine != nil {
			es := engine.Stats()
			fmt.Fprintf(os.Stderr, "goldilocks: %d pair checks, short-circuit %.1f%%, %d full walks over %d cells, %d collections\n",
				es.PairChecks, 100*es.ShortCircuitRate(), es.FullWalks, es.WalkCells, es.Collections)
			fmt.Fprintf(os.Stderr, "resilience: %d panics recovered, %d vars quarantined, rung %v (%d escalations), %d aggressive GCs, %d cache sheds, %d eager sweeps, %d degraded checks\n",
				es.PanicsRecovered, es.VarsQuarantined, es.GovernorRung, es.Escalations,
				es.AggressiveGCs, es.CacheSheds, es.EagerSweeps, es.DegradedChecks)
		}
		if guard != nil {
			panics, quarantined := guard.GuardStats()
			fmt.Fprintf(os.Stderr, "resilience: %d panics recovered, %d vars quarantined\n", panics, quarantined)
		}
	}
	if recorder != nil && c.record != "" {
		if err := writeRecording(c.record, recorder.Trace()); err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "recorded %d actions to %s\n", recorder.Trace().Len(), c.record)
	}
	violations := 0
	if c.serial {
		// The recorded linearization is exactly what the detector saw;
		// lock-protected spans count as regions because MJ programs mark
		// atomicity with monitors and transactions alike.
		opts := regiontrack.DefaultOptions()
		opts.LockRegions = true
		_, sum := regiontrack.Check(recorder.Trace(), opts)
		for _, v := range sum.Violations {
			fmt.Fprintf(os.Stderr, "serializability violation at action %d: region %d -> region %d closes cycle %v (threads %v)\n",
				v.Pos, v.From, v.To, v.Cycle, v.Threads)
		}
		verdict := "serializable"
		if !sum.Serializable {
			verdict = "NOT serializable"
		}
		fmt.Fprintf(os.Stderr, "serializability: %s — %d regions (%d multi-event), %d conflict edges, %d violations\n",
			verdict, sum.Regions, sum.MultiRegions, sum.Edges, sum.ViolationTotal)
		violations = sum.ViolationTotal
	}
	if c.statsJSON != "" {
		if err := writeStatsJSON(c.statsJSON, statsDoc(reg, tel, engine, rt, races)); err != nil {
			return 0, err
		}
	}
	if srv != nil && c.metricsLinger > 0 {
		fmt.Fprintf(os.Stderr, "goldilocks: metrics endpoint lingering for %v\n", c.metricsLinger)
		lingerTimer := time.NewTimer(c.metricsLinger)
		select {
		case <-lingerTimer.C:
		case <-ctx.Done():
			lingerTimer.Stop()
			fmt.Fprintln(os.Stderr, "goldilocks: signal received, cutting linger short")
		}
	}
	if rep := rt.Failure(); rep != nil {
		fmt.Fprintf(os.Stderr, "goldilocks: %v\n", rep)
		return len(races) + violations, rep
	}
	return len(races) + violations, nil
}

// raceDoc is one race in the -stats-json document.
type raceDoc struct {
	Var        string          `json:"var"`
	Access     string          `json:"access"`
	Pos        int             `json:"pos"`
	Prev       string          `json:"prev,omitempty"`
	Provenance *obs.Provenance `json:"provenance,omitempty"`
}

// statsDoc assembles the composite -stats-json document: the metric
// registry snapshot, the races with their provenance, and the raw
// runtime/engine counters.
func statsDoc(reg *obs.Registry, tel *obs.Telemetry, engine *core.Engine, rt *jrt.Runtime, races []detect.Race) map[string]any {
	rds := make([]raceDoc, len(races))
	for i, r := range races {
		rds[i] = raceDoc{Var: r.Var.String(), Access: r.Access.String(), Pos: r.Pos, Provenance: r.Prov}
		if r.HasPrev {
			rds[i].Prev = r.Prev.String()
		}
	}
	doc := map[string]any{
		"metrics": reg.JSONValue(),
		"races":   rds,
		"runtime": rt.Stats(),
	}
	if engine != nil {
		doc["engine"] = engine.Stats()
	}
	if rep := rt.Failure(); rep != nil {
		doc["failure"] = rep
	}
	if tel.Trace.Enabled() {
		transitions, dropped := tel.Trace.Snapshot()
		doc["trace"] = map[string]any{"transitions": transitions, "dropped": dropped}
	}
	return doc
}

// writeStatsJSON writes the document to path ("-" is stdout).
func writeStatsJSON(path string, doc map[string]any) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// writeRecording writes the trace in the format the path's extension
// selects: .jsonl is the checksummed streaming format (robust to
// truncation), anything else the legacy single-object JSON.
func writeRecording(path string, tr *event.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return event.WriteTraceStream(f, tr)
	}
	return event.WriteTrace(f, tr)
}

// nopDetector lets -record work with -detector none.
type nopDetector struct{}

func (nopDetector) Sync(event.Action) {}
func (nopDetector) Read(event.Tid, event.Addr, event.FieldID) *detect.Race {
	return nil
}
func (nopDetector) Write(event.Tid, event.Addr, event.FieldID) *detect.Race {
	return nil
}
func (nopDetector) Commit(event.Tid, []event.Variable, []event.Variable) []detect.Race {
	return nil
}
func (nopDetector) Alloc(event.Tid, event.Addr) {}
