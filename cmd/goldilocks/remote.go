package main

import (
	"context"
	"sync"

	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/server"
)

// remoteSession adapts a goldilocksd session to the runtime's Detector
// interface: every runtime event is streamed to the daemon, and
// verdicts come back asynchronously (collected at finish, printed with
// the run's race report). Access checks therefore always return nil
// here — remote detection cannot throw a DataRaceException into the
// accessing thread, which is why -remote forces the log policy.
//
// Calls are serialized through one mutex, so the streamed linearization
// is exactly the order the detector calls were made in (the same trade
// jrt.Record makes: fidelity over detector-side concurrency).
type remoteSession struct {
	mu  sync.Mutex
	c   *server.Client
	err error // first send failure; finish reports it
}

func dialRemote(addr, session string, forceJSON bool) (*remoteSession, error) {
	// addr may be a single daemon or a comma-separated fleet list; a
	// fleet client follows NOT_OWNER redirects and fails over.
	c, err := server.DialAutoConfig(context.Background(), addr, session,
		server.DialConfig{ForceJSON: forceJSON})
	if err != nil {
		return nil, err
	}
	return &remoteSession{c: c}, nil
}

func (r *remoteSession) send(a event.Action) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	r.err = r.c.Send(a)
}

func (r *remoteSession) Sync(a event.Action) { r.send(a) }

func (r *remoteSession) Read(t event.Tid, o event.Addr, f event.FieldID) *detect.Race {
	r.send(event.Read(t, o, f))
	return nil
}

func (r *remoteSession) Write(t event.Tid, o event.Addr, f event.FieldID) *detect.Race {
	r.send(event.Write(t, o, f))
	return nil
}

func (r *remoteSession) Commit(t event.Tid, reads, writes []event.Variable) []detect.Race {
	r.send(event.Commit(t, reads, writes))
	return nil
}

func (r *remoteSession) Alloc(t event.Tid, o event.Addr) {
	r.send(event.Alloc(t, o))
}

// finish completes the session: everything streamed is applied, the
// daemon's verdicts are available via races, and the final ack carries
// the session engine's counters.
func (r *remoteSession) finish() (server.Ack, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		r.c.Abandon()
		return server.Ack{}, r.err
	}
	return r.c.Close()
}

// races returns the verdicts received so far.
func (r *remoteSession) races() []detect.Race { return r.c.Races() }
