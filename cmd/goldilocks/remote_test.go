package main

import (
	"context"
	"testing"

	"goldilocks/internal/resilience"
	"goldilocks/internal/server"
)

// TestRunRemoteParity runs the same programs locally and against an
// in-process goldilocksd and requires the same verdict count and exit
// code from both paths.
func TestRunRemoteParity(t *testing.T) {
	srv, err := server.New("127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	defer srv.Close()

	for name, src := range map[string]string{"clean": cleanSrc, "racy": racySrc} {
		path := writeProgram(t, src)

		local := cfg()
		local.policy = "log"
		nLocal, err := run(context.Background(), path, local)
		if err != nil {
			t.Fatalf("%s: local run: %v", name, err)
		}

		rem := cfg()
		rem.policy = "log"
		rem.remote = srv.Addr()
		rem.session = "cli-" + name
		nRemote, err := run(context.Background(), path, rem)
		if err != nil {
			t.Fatalf("%s: remote run: %v", name, err)
		}

		if nLocal != nRemote {
			t.Errorf("%s: local %d races, remote %d", name, nLocal, nRemote)
		}
		if lc, rc := exitFor(nLocal, nil), exitFor(nRemote, nil); lc != rc {
			t.Errorf("%s: local exit %d, remote exit %d", name, lc, rc)
		}
	}
}

// TestRunRemoteForcesLogPolicy keeps the throw policy from silently
// doing nothing with -remote: the run succeeds, logs the verdicts, and
// still reports the racy exit code.
func TestRunRemoteForcesLogPolicy(t *testing.T) {
	srv, err := server.New("127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	defer srv.Close()

	path := writeProgram(t, racySrc)
	c := cfg() // policy: throw
	c.remote = srv.Addr()
	c.session = "cli-throw"
	n, err := run(context.Background(), path, c)
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	if n == 0 {
		t.Fatal("racy program reported no races via remote detection")
	}
	if code := exitFor(n, err); code != resilience.ExitRace {
		t.Errorf("exit code %d, want %d", code, resilience.ExitRace)
	}
}

// TestRunRemoteUnreachable maps a refused connection to a runtime
// failure, not a silent clean run.
func TestRunRemoteUnreachable(t *testing.T) {
	path := writeProgram(t, cleanSrc)
	c := cfg()
	c.remote = "127.0.0.1:1" // nothing listens here
	if _, err := run(context.Background(), path, c); err == nil {
		t.Fatal("run with unreachable daemon succeeded")
	}
}
