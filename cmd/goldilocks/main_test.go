package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/resilience"
)

func writeProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.mj")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// cfg returns a runConfig with the historical defaults; tests override
// fields as needed.
func cfg() runConfig {
	return runConfig{detector: "goldilocks", static: "none", policy: "throw", sched: "det", seed: 1, onError: "quarantine"}
}

const cleanSrc = `
class Counter { int n; synchronized void inc() { n = n + 1; } }
class Main {
	Counter c;
	void work() { for (int i = 0; i < 5; i = i + 1) { c.inc(); } }
	void main() {
		c = new Counter();
		thread a = spawn this.work();
		join(a);
		print(c.n);
	}
}
`

const racySrc = `
class D { int v; }
class Main {
	D d;
	void racer() { d.v = 1; }
	void main() {
		d = new D();
		thread t = spawn this.racer();
		d.v = 2;
		join(t);
	}
}
`

func TestRunCleanProgramAllDetectors(t *testing.T) {
	path := writeProgram(t, cleanSrc)
	for _, det := range []string{"goldilocks", "vectorclock", "eraser", "none"} {
		c := cfg()
		c.detector = det
		c.stats = true
		n, err := run(context.Background(), path, c)
		if err != nil {
			t.Errorf("detector %s: %v", det, err)
		}
		if n != 0 {
			t.Errorf("detector %s: %d races on a race-free program", det, n)
		}
		if code := exitFor(n, err); code != resilience.ExitClean {
			t.Errorf("detector %s: exit code %d, want %d", det, code, resilience.ExitClean)
		}
	}
	// The naive lockset detector false-alarms on the unprotected
	// initialization, demonstrating the precision gap from the CLI too.
	c := cfg()
	c.detector, c.policy = "basic", "log"
	n, err := run(context.Background(), path, c)
	if err != nil {
		t.Fatalf("basic: %v", err)
	}
	if n == 0 {
		t.Error("basic-lockset did not false-alarm")
	}
	if code := exitFor(n, err); code != resilience.ExitRace {
		t.Errorf("racy exit code %d, want %d", code, resilience.ExitRace)
	}
}

func TestRunStaticAnalyses(t *testing.T) {
	path := writeProgram(t, cleanSrc)
	for _, analysis := range []string{"chord", "rcc"} {
		c := cfg()
		c.static, c.policy = analysis, "log"
		if _, err := run(context.Background(), path, c); err != nil {
			t.Errorf("static %s: %v", analysis, err)
		}
	}
}

func TestRunNoShortCircuit(t *testing.T) {
	path := writeProgram(t, cleanSrc)
	c := cfg()
	c.sched, c.seed, c.stats, c.noSC = "free", 0, true, true
	if _, err := run(context.Background(), path, c); err != nil {
		t.Errorf("no-shortcircuit: %v", err)
	}
}

func TestRunMemoryBudget(t *testing.T) {
	path := writeProgram(t, cleanSrc)
	c := cfg()
	c.budget, c.stats = 16, true
	n, err := run(context.Background(), path, c)
	if err != nil {
		t.Fatalf("memory budget: %v", err)
	}
	if n != 0 {
		t.Errorf("%d races under a memory budget on a race-free program", n)
	}
}

func TestRunRejectsBadFlagsWithUsageExit(t *testing.T) {
	path := writeProgram(t, cleanSrc)
	cases := []runConfig{}
	c := cfg()
	c.detector = "bogus"
	cases = append(cases, c)
	c = cfg()
	c.static = "bogus"
	cases = append(cases, c)
	c = cfg()
	c.policy = "bogus"
	cases = append(cases, c)
	c = cfg()
	c.sched = "bogus"
	cases = append(cases, c)
	c = cfg()
	c.onError = "bogus"
	cases = append(cases, c)
	for _, c := range cases {
		n, err := run(context.Background(), path, c)
		if err == nil {
			t.Errorf("config %+v accepted", c)
			continue
		}
		if !errors.Is(err, errUsage) {
			t.Errorf("config %+v: error %v is not a usage error", c, err)
		}
		if code := exitFor(n, err); code != resilience.ExitUsage {
			t.Errorf("config %+v: exit code %d, want %d", c, code, resilience.ExitUsage)
		}
	}
}

func TestRunFrontEndErrorsExitRuntime(t *testing.T) {
	n, err := run(context.Background(), filepath.Join(t.TempDir(), "missing.mj"), cfg())
	if err == nil {
		t.Error("missing file accepted")
	}
	if code := exitFor(n, err); code != resilience.ExitRuntime {
		t.Errorf("missing file: exit code %d, want %d", code, resilience.ExitRuntime)
	}
	bad := writeProgram(t, "class {")
	if _, err := run(context.Background(), bad, cfg()); err == nil {
		t.Error("syntax error accepted")
	}
	unchecked := writeProgram(t, "class C { void m() { x = 1; } }")
	if _, err := run(context.Background(), unchecked, cfg()); err == nil {
		t.Error("type error accepted")
	}
}

// TestRunDeadlockExitsRuntime: a deterministic deadlock produces a
// structured failure and the runtime-error exit code, not a crash.
func TestRunDeadlockExitsRuntime(t *testing.T) {
	path := writeProgram(t, `
class L { int x; }
class Main {
	L a; L b;
	void left() {
		synchronized (a) { synchronized (b) { b.x = 1; } }
	}
	void main() {
		a = new L(); b = new L();
		thread t = spawn this.left();
		synchronized (b) { synchronized (a) { a.x = 2; } }
		join(t);
	}
}
`)
	// A deadlock needs the right interleaving; scan seeds until one
	// manifests (the clean exits are legitimate runs).
	for seed := int64(1); seed <= 50; seed++ {
		c := cfg()
		c.policy = "log"
		c.seed = seed
		n, err := run(context.Background(), path, c)
		if err == nil {
			continue
		}
		var rep *resilience.Report
		if !errors.As(err, &rep) {
			t.Fatalf("seed %d: error %v is not a resilience.Report", seed, err)
		}
		if rep.Kind != resilience.Deadlock {
			t.Fatalf("seed %d: Kind = %v, want Deadlock", seed, rep.Kind)
		}
		if code := exitFor(n, err); code != resilience.ExitRuntime {
			t.Fatalf("seed %d: exit code %d, want %d", seed, code, resilience.ExitRuntime)
		}
		return
	}
	t.Fatal("no seed in 1..50 deadlocked the lock-inversion program")
}

func TestRecordFlagWritesReplayableTrace(t *testing.T) {
	path := writeProgram(t, cleanSrc)
	trace := filepath.Join(t.TempDir(), "out.json")
	c := cfg()
	c.policy, c.record = "log", trace
	if _, err := run(context.Background(), path, c); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := event.ReadTrace(f)
	if err != nil {
		t.Fatalf("recorded trace unreadable: %v", err)
	}
	if tr.Len() == 0 {
		t.Error("empty recording")
	}
	// The recording replays race-free.
	if rs := detect.RunTrace(core.New(), tr); len(rs) != 0 {
		t.Errorf("replay found races: %v", rs)
	}
}

// TestRecordStreamFormat: a .jsonl path selects the checksummed
// streaming format, which reads back loss-free.
func TestRecordStreamFormat(t *testing.T) {
	path := writeProgram(t, cleanSrc)
	trace := filepath.Join(t.TempDir(), "out.jsonl")
	c := cfg()
	c.policy, c.record = "log", trace
	if _, err := run(context.Background(), path, c); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, dropped, err := event.ReadTraceStream(f)
	if err != nil {
		t.Fatalf("streamed trace unreadable: %v", err)
	}
	if dropped != 0 {
		t.Errorf("dropped = %d on an intact recording", dropped)
	}
	if tr.Len() == 0 {
		t.Error("empty recording")
	}
	if rs := detect.RunTrace(core.New(), tr); len(rs) != 0 {
		t.Errorf("replay found races: %v", rs)
	}
}

func TestExploreFlag(t *testing.T) {
	racy := writeProgram(t, racySrc)
	n, err := exploreSchedules(racy, 100, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("exploration found no racy schedule of an always-racy program")
	}
	if code := exitFor(n, err); code != resilience.ExitRace {
		t.Errorf("racy exploration exit code %d, want %d", code, resilience.ExitRace)
	}
	clean := writeProgram(t, cleanSrc)
	n, err = exploreSchedules(clean, 2000, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("exploration found %d racy schedules of a race-free program", n)
	}
}
