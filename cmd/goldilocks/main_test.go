package main

import (
	"os"
	"path/filepath"
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
)

func writeProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.mj")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cleanSrc = `
class Counter { int n; synchronized void inc() { n = n + 1; } }
class Main {
	Counter c;
	void work() { for (int i = 0; i < 5; i = i + 1) { c.inc(); } }
	void main() {
		c = new Counter();
		thread a = spawn this.work();
		join(a);
		print(c.n);
	}
}
`

func TestRunCleanProgramAllDetectors(t *testing.T) {
	path := writeProgram(t, cleanSrc)
	for _, det := range []string{"goldilocks", "vectorclock", "eraser", "none"} {
		n, err := run(path, det, "none", "throw", "det", 1, true, false, "")
		if err != nil {
			t.Errorf("detector %s: %v", det, err)
		}
		if n != 0 {
			t.Errorf("detector %s: %d races on a race-free program", det, n)
		}
	}
	// The naive lockset detector false-alarms on the unprotected
	// initialization, demonstrating the precision gap from the CLI too.
	n, err := run(path, "basic", "none", "log", "det", 1, false, false, "")
	if err != nil {
		t.Fatalf("basic: %v", err)
	}
	if n == 0 {
		t.Error("basic-lockset did not false-alarm")
	}
}

func TestRunStaticAnalyses(t *testing.T) {
	path := writeProgram(t, cleanSrc)
	for _, analysis := range []string{"chord", "rcc"} {
		if _, err := run(path, "goldilocks", analysis, "log", "det", 1, false, false, ""); err != nil {
			t.Errorf("static %s: %v", analysis, err)
		}
	}
}

func TestRunNoShortCircuit(t *testing.T) {
	path := writeProgram(t, cleanSrc)
	if _, err := run(path, "goldilocks", "none", "throw", "free", 0, true, true, ""); err != nil {
		t.Errorf("no-shortcircuit: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	path := writeProgram(t, cleanSrc)
	cases := [][4]string{
		{"bogus", "none", "throw", "det"},
		{"goldilocks", "bogus", "throw", "det"},
		{"goldilocks", "none", "bogus", "det"},
		{"goldilocks", "none", "throw", "bogus"},
	}
	for _, c := range cases {
		if _, err := run(path, c[0], c[1], c[2], c[3], 1, false, false, ""); err == nil {
			t.Errorf("flags %v accepted", c)
		}
	}
}

func TestRunFrontEndErrors(t *testing.T) {
	if _, err := run(filepath.Join(t.TempDir(), "missing.mj"), "goldilocks", "none", "throw", "det", 1, false, false, ""); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeProgram(t, "class {")
	if _, err := run(bad, "goldilocks", "none", "throw", "det", 1, false, false, ""); err == nil {
		t.Error("syntax error accepted")
	}
	unchecked := writeProgram(t, "class C { void m() { x = 1; } }")
	if _, err := run(unchecked, "goldilocks", "none", "throw", "det", 1, false, false, ""); err == nil {
		t.Error("type error accepted")
	}
}

func TestRecordFlagWritesReplayableTrace(t *testing.T) {
	path := writeProgram(t, cleanSrc)
	trace := filepath.Join(t.TempDir(), "out.json")
	if _, err := run(path, "goldilocks", "none", "log", "det", 1, false, false, trace); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := event.ReadTrace(f)
	if err != nil {
		t.Fatalf("recorded trace unreadable: %v", err)
	}
	if tr.Len() == 0 {
		t.Error("empty recording")
	}
	// The recording replays race-free.
	if rs := detect.RunTrace(core.New(), tr); len(rs) != 0 {
		t.Errorf("replay found races: %v", rs)
	}
}

func TestExploreFlag(t *testing.T) {
	racy := writeProgram(t, `
class D { int v; }
class Main {
	D d;
	void racer() { d.v = 1; }
	void main() {
		d = new D();
		thread t = spawn this.racer();
		d.v = 2;
		join(t);
	}
}
`)
	n, err := exploreSchedules(racy, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("exploration found no racy schedule of an always-racy program")
	}
	clean := writeProgram(t, cleanSrc)
	n, err = exploreSchedules(clean, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("exploration found %d racy schedules of a race-free program", n)
	}
}
