// Command goldilocksctl operates a goldilocksd cluster from the
// outside: fleet status, planned drains, rebalancing, metric rollups,
// and the chaos drill that proves failover loses no verdicts.
//
//	goldilocksctl -cluster a:1,b:2,c:3 status
//	goldilocksctl -cluster a:1,b:2,c:3 drain b:2
//	goldilocksctl -cluster a:1,b:2,c:3 rebalance
//	goldilocksctl -cluster a:1,b:2,c:3 metrics
//	goldilocksctl -cluster a:1,b:2,c:3 drill -kill-pid 1234 -kill-addr b:2
//
// The drill streams the seed corpus (Section 2 scenarios plus the
// conformance counterexamples) through failover-aware fleet clients,
// SIGKILLs the named node mid-corpus, finishes streaming, and then
// requires every session's verdicts and Figure 5 rule-fire counts to
// match the executable specification exactly — zero divergences, zero
// caller-visible errors, at least one observed failover.
//
// Exit codes: 0 success, 1 drill divergence, 2 usage, 3 runtime error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"syscall"
	"time"

	"goldilocks/internal/cluster"
	"goldilocks/internal/conformance"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
	"goldilocks/internal/resilience"
	"goldilocks/internal/scenarios"
	"goldilocks/internal/server"
)

func main() {
	var (
		members = flag.String("cluster", "", "comma-separated fleet member list (required)")
		repl    = flag.Int("replicas", 2, "replica count K, matching the fleet's -replicas")
		timeout = flag.Duration("timeout", 5*time.Second, "per-exchange admin timeout")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: goldilocksctl -cluster <a,b,c> [flags] status|drain <node>|rebalance|metrics|drill [drill flags]")
		flag.PrintDefaults()
	}
	flag.Parse()
	fleet := splitList(*members)
	if len(fleet) == 0 || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(resilience.ExitUsage)
	}
	co := &cluster.Coordinator{Members: fleet, Replicas: *repl, Timeout: *timeout}
	ctx := context.Background()

	var err error
	switch cmd := flag.Arg(0); cmd {
	case "status":
		err = status(ctx, co)
	case "drain":
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: goldilocksctl -cluster ... drain <node-addr>")
			os.Exit(resilience.ExitUsage)
		}
		var moved int
		moved, err = co.Drain(ctx, flag.Arg(1))
		fmt.Printf("drained %s: %d sessions migrated\n", flag.Arg(1), moved)
	case "rebalance":
		var moved int
		moved, err = co.Rebalance(ctx)
		fmt.Printf("rebalanced: %d sessions migrated\n", moved)
	case "metrics":
		os.Stdout.Write(cluster.Rollup(ctx, fleet, *timeout))
	case "drill":
		os.Exit(drill(fleet, flag.Args()[1:]))
	default:
		fmt.Fprintf(os.Stderr, "goldilocksctl: unknown command %q\n", cmd)
		os.Exit(resilience.ExitUsage)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldilocksctl:", err)
		os.Exit(resilience.ExitRuntime)
	}
	os.Exit(resilience.ExitClean)
}

func splitList(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func status(ctx context.Context, co *cluster.Coordinator) error {
	for _, st := range co.Status(ctx) {
		state := "up"
		switch {
		case !st.Alive:
			state = "DOWN"
		case st.Draining:
			state = "draining"
		}
		fmt.Printf("%-24s %-9s sessions=%d", st.Addr, state, len(st.Sessions))
		if st.Err != "" {
			fmt.Printf("  error=%s", st.Err)
		}
		fmt.Println()
		for _, si := range st.Sessions {
			att := ""
			if si.Attached {
				att = " attached"
			}
			fmt.Printf("    %-32s applied=%d races=%d%s\n", si.ID, si.Applied, si.Races, att)
		}
	}
	return nil
}

// drill is the chaos acceptance gate. It needs a victim to SIGKILL —
// the shell script that owns the daemon processes passes the pid in.
func drill(fleet []string, args []string) int {
	fs := flag.NewFlagSet("drill", flag.ExitOnError)
	var (
		killPid   = fs.Int("kill-pid", 0, "process to SIGKILL once every session is mid-stream (required)")
		killAddr  = fs.String("kill-addr", "", "the victim's fleet address, reported in the summary")
		corpusDir = fs.String("corpus", "", "extra corpus directory of .jsonl traces (e.g. internal/conformance/testdata)")
		failover  = fs.Duration("failover-timeout", 30*time.Second, "per-client failover budget")
	)
	fs.Parse(args)
	if *killPid <= 0 {
		fmt.Fprintln(os.Stderr, "goldilocksctl drill: -kill-pid is required")
		return resilience.ExitUsage
	}

	traces, err := drillCorpus(*corpusDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldilocksctl drill:", err)
		return resilience.ExitRuntime
	}
	names := make([]string, 0, len(traces))
	for name := range traces {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("drill: %d sessions over fleet %v, victim pid %d %s\n", len(names), fleet, *killPid, *killAddr)

	cfg := server.DialConfig{FailoverTimeout: *failover}
	ctx := context.Background()

	// Phase 1: open a fleet client per trace and stream the first half.
	clients := make(map[string]*server.Client, len(names))
	for i, name := range names {
		tr := traces[name]
		c, err := server.DialFleet(ctx, fleet, fmt.Sprintf("drill-%d", i), cfg)
		if err != nil {
			return fail("dialing for %s: %v", name, err)
		}
		clients[name] = c
		for j := 0; j < tr.Len()/2; j++ {
			if err := c.Send(tr.At(j)); err != nil {
				return fail("%s: streaming first half: %v", name, err)
			}
		}
		if _, err := c.Flush(); err != nil {
			return fail("%s: flushing first half: %v", name, err)
		}
	}

	// Phase 2: kill the victim with every session mid-stream.
	fmt.Printf("drill: SIGKILL %d\n", *killPid)
	if err := syscall.Kill(*killPid, syscall.SIGKILL); err != nil {
		return fail("killing pid %d: %v", *killPid, err)
	}

	// Phase 3: finish every trace through failover and check each
	// session against the executable specification.
	divergences, failovers := 0, 0
	for _, name := range names {
		tr, c := traces[name], clients[name]
		for j := tr.Len() / 2; j < tr.Len(); j++ {
			if err := c.Send(tr.At(j)); err != nil {
				return fail("%s: streaming second half: %v", name, err)
			}
		}
		ack, err := c.Close()
		if err != nil {
			return fail("%s: closing: %v", name, err)
		}
		failovers += c.Failovers()
		backend := func(*event.Trace) (conformance.BackendResult, error) {
			res := conformance.BackendResult{Races: c.Races()}
			if len(ack.RuleFires) == obs.NumRules+1 {
				copy(res.RuleFires[:], ack.RuleFires)
				res.HasRuleFires = true
			}
			return res, nil
		}
		if div := conformance.CheckBackend("cluster", backend, tr); div != nil {
			divergences++
			fmt.Fprintf(os.Stderr, "drill: DIVERGENCE %s (failovers=%d): %v\n", name, c.Failovers(), div)
		}
	}

	fmt.Printf("drill: %d sessions converged, %d divergences, %d failovers\n",
		len(names)-divergences, divergences, failovers)
	if divergences > 0 {
		return resilience.ExitRace
	}
	if failovers == 0 {
		fmt.Fprintln(os.Stderr, "drill: no client failed over — the kill hit nothing; drill proves nothing")
		return resilience.ExitRuntime
	}
	return resilience.ExitClean
}

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "goldilocksctl drill: "+format+"\n", args...)
	return resilience.ExitRuntime
}

// drillCorpus is the seed corpus: every Section 2 scenario, plus the
// checked-in conformance counterexamples when a corpus dir is given.
func drillCorpus(dir string) (map[string]*event.Trace, error) {
	out := make(map[string]*event.Trace)
	for _, sc := range scenarios.All() {
		out["scenario-"+sc.Name] = sc.Trace
	}
	if dir != "" {
		entries, err := conformance.LoadCorpus(dir)
		if err != nil {
			return nil, fmt.Errorf("loading corpus %s: %w", dir, err)
		}
		for _, e := range entries {
			out["corpus-"+strings.TrimSuffix(e.Name, ".jsonl")] = e.Trace
		}
	}
	return out, nil
}
