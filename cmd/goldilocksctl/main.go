// Command goldilocksctl operates a goldilocksd cluster from the
// outside: fleet status, planned drains, rebalancing, metric rollups,
// and the chaos drill that proves failover loses no verdicts.
//
//	goldilocksctl -cluster a:1,b:2,c:3 status
//	goldilocksctl -cluster a:1,b:2,c:3 drain b:2
//	goldilocksctl -cluster a:1,b:2,c:3 rebalance
//	goldilocksctl -cluster a:1,b:2,c:3 metrics
//	goldilocksctl -cluster a:1,b:2,c:3 flight -out ./dumps
//	goldilocksctl -cluster a:1,b:2,c:3 drill -kill-pid 1234 -kill-addr b:2
//
// The drill streams the seed corpus (Section 2 scenarios plus the
// conformance counterexamples) through failover-aware fleet clients,
// SIGKILLs the named node mid-corpus, finishes streaming, and then
// requires every session's verdicts and Figure 5 rule-fire counts to
// match the executable specification exactly — zero divergences, zero
// caller-visible errors, at least one observed failover.
//
// Exit codes: 0 success, 1 drill divergence, 2 usage, 3 runtime error.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"goldilocks/internal/cluster"
	"goldilocks/internal/conformance"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
	"goldilocks/internal/resilience"
	"goldilocks/internal/scenarios"
	"goldilocks/internal/server"
)

func main() {
	var (
		members  = flag.String("cluster", "", "comma-separated fleet member list (required)")
		repl     = flag.Int("replicas", 2, "replica count K, matching the fleet's -replicas")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-exchange admin timeout")
		logLevel = flag.String("log-level", "warn", "minimum log level: debug, info, warn, error")
		logJSON  = flag.Bool("log-json", false, "emit structured JSON log records instead of text")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: goldilocksctl -cluster <a,b,c> [flags] status|drain <node>|rebalance|metrics|flight [flight flags]|drill [drill flags]")
		flag.PrintDefaults()
	}
	flag.Parse()
	level, lerr := obs.ParseLogLevel(*logLevel)
	if lerr != nil {
		fmt.Fprintln(os.Stderr, "goldilocksctl:", lerr)
		os.Exit(resilience.ExitUsage)
	}
	log := obs.NewLogger(os.Stderr, level, *logJSON).With("component", "goldilocksctl")
	fleet := splitList(*members)
	if len(fleet) == 0 || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(resilience.ExitUsage)
	}
	co := &cluster.Coordinator{Members: fleet, Replicas: *repl, Timeout: *timeout}
	ctx := context.Background()

	var err error
	switch cmd := flag.Arg(0); cmd {
	case "status":
		err = status(ctx, co)
	case "drain":
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: goldilocksctl -cluster ... drain <node-addr>")
			os.Exit(resilience.ExitUsage)
		}
		var moved int
		moved, err = co.Drain(ctx, flag.Arg(1))
		fmt.Printf("drained %s: %d sessions migrated\n", flag.Arg(1), moved)
	case "rebalance":
		var moved int
		moved, err = co.Rebalance(ctx)
		fmt.Printf("rebalanced: %d sessions migrated\n", moved)
	case "metrics":
		os.Stdout.Write(cluster.Rollup(ctx, fleet, *timeout))
	case "flight":
		os.Exit(flight(ctx, fleet, *timeout, log, flag.Args()[1:]))
	case "drill":
		os.Exit(drill(fleet, flag.Args()[1:]))
	default:
		fmt.Fprintf(os.Stderr, "goldilocksctl: unknown command %q\n", cmd)
		os.Exit(resilience.ExitUsage)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldilocksctl:", err)
		os.Exit(resilience.ExitRuntime)
	}
	os.Exit(resilience.ExitClean)
}

func splitList(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func status(ctx context.Context, co *cluster.Coordinator) error {
	for _, st := range co.Status(ctx) {
		state := "up"
		switch {
		case !st.Alive:
			state = "DOWN"
		case st.Draining:
			state = "draining"
		}
		fmt.Printf("%-24s %-9s sessions=%d", st.Addr, state, len(st.Sessions))
		if st.Err != "" {
			fmt.Printf("  error=%s", st.Err)
		}
		fmt.Println()
		for _, si := range st.Sessions {
			att := ""
			if si.Attached {
				att = " attached"
			}
			fmt.Printf("    %-32s applied=%d races=%d%s\n", si.ID, si.Applied, si.Races, att)
		}
	}
	return nil
}

// flight pulls every member's flight-recorder ring over the admin
// protocol. With -out each node's dump lands in its own
// <node>.flight.jsonl (checksums verified, summary printed); without it
// the dumps stream to stdout under "# node" headers. A nonempty -reason
// marks an incident and makes each node keep a local copy too.
func flight(ctx context.Context, fleet []string, timeout time.Duration, log *slog.Logger, args []string) int {
	fs := flag.NewFlagSet("flight", flag.ExitOnError)
	var (
		out    = fs.String("out", "", "write one <node>.flight.jsonl per member into this directory (default: stdout)")
		reason = fs.String("reason", "", "incident reason; nonempty also triggers a local dump on each node")
	)
	fs.Parse(args)
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "goldilocksctl flight:", err)
			return resilience.ExitRuntime
		}
	}
	scraped := 0
	for _, addr := range fleet {
		cctx, cancel := context.WithTimeout(ctx, timeout)
		body, err := server.ScrapeFlight(cctx, addr, *reason)
		cancel()
		if err != nil {
			log.Warn("flight scrape failed", "node", addr, "err", err)
			continue
		}
		hdr, events, derr := obs.ReadFlightDump(bytes.NewReader(body))
		if derr != nil {
			log.Warn("flight dump damaged", "node", addr, "salvaged", len(events), "err", derr)
		}
		if *out == "" {
			fmt.Printf("# node %s\n", addr)
			os.Stdout.Write(body)
		} else {
			path := filepath.Join(*out, sanitizeNode(addr)+".flight.jsonl")
			if err := os.WriteFile(path, body, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "goldilocksctl flight:", err)
				return resilience.ExitRuntime
			}
			fmt.Printf("flight: %s -> %s (%d events, %d overwritten)\n", addr, path, hdr.Events, hdr.Overwritten)
		}
		scraped++
	}
	if scraped == 0 {
		fmt.Fprintln(os.Stderr, "goldilocksctl flight: no member answered")
		return resilience.ExitRuntime
	}
	return resilience.ExitClean
}

// sanitizeNode maps a fleet address to a filename-safe stem.
func sanitizeNode(addr string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			return r
		default:
			return '-'
		}
	}, addr)
}

// drill is the chaos acceptance gate. It needs a victim to SIGKILL —
// the shell script that owns the daemon processes passes the pid in.
func drill(fleet []string, args []string) int {
	fs := flag.NewFlagSet("drill", flag.ExitOnError)
	var (
		killPid   = fs.Int("kill-pid", 0, "process to SIGKILL once every session is mid-stream (required)")
		killAddr  = fs.String("kill-addr", "", "the victim's fleet address, reported in the summary")
		corpusDir = fs.String("corpus", "", "extra corpus directory of .jsonl traces (e.g. internal/conformance/testdata)")
		failover  = fs.Duration("failover-timeout", 30*time.Second, "per-client failover budget")
		flightOut = fs.String("flight-out", "", "collect each surviving node's flight dump into this directory after the drill")
		wire      = fs.String("wire", "mixed", "session wire formats: mixed (alternate binary and line-JSON so the kill hits both), binary, or json")
	)
	fs.Parse(args)
	if *killPid <= 0 {
		fmt.Fprintln(os.Stderr, "goldilocksctl drill: -kill-pid is required")
		return resilience.ExitUsage
	}

	traces, err := drillCorpus(*corpusDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldilocksctl drill:", err)
		return resilience.ExitRuntime
	}
	names := make([]string, 0, len(traces))
	for name := range traces {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("drill: %d sessions over fleet %v, victim pid %d %s\n", len(names), fleet, *killPid, *killAddr)

	cfg := server.DialConfig{FailoverTimeout: *failover}
	ctx := context.Background()

	// Phase 1: open a fleet client per trace and stream the first half.
	// In the default mixed mode half the sessions ride the binary wire
	// and half line-JSON, so the SIGKILL migrates streams of both
	// formats and failover re-negotiation is exercised each way.
	clients := make(map[string]*server.Client, len(names))
	binSessions := 0
	for i, name := range names {
		tr := traces[name]
		runCfg := cfg
		switch *wire {
		case "json":
			runCfg.ForceJSON = true
		case "binary":
		case "mixed":
			runCfg.ForceJSON = i%2 == 1
		default:
			fmt.Fprintf(os.Stderr, "goldilocksctl drill: unknown -wire %q\n", *wire)
			return resilience.ExitUsage
		}
		c, err := server.DialFleet(ctx, fleet, fmt.Sprintf("drill-%d", i), runCfg)
		if err != nil {
			return fail("dialing for %s: %v", name, err)
		}
		if c.Binary() {
			binSessions++
		}
		clients[name] = c
		for j := 0; j < tr.Len()/2; j++ {
			if err := c.Send(tr.At(j)); err != nil {
				return fail("%s: streaming first half: %v", name, err)
			}
		}
		if _, err := c.Flush(); err != nil {
			return fail("%s: flushing first half: %v", name, err)
		}
	}

	// Phase 2: kill the victim with every session mid-stream.
	fmt.Printf("drill: SIGKILL %d\n", *killPid)
	if err := syscall.Kill(*killPid, syscall.SIGKILL); err != nil {
		return fail("killing pid %d: %v", *killPid, err)
	}

	// Phase 3: finish every trace through failover and check each
	// session against the executable specification.
	divergences, failovers := 0, 0
	for _, name := range names {
		tr, c := traces[name], clients[name]
		for j := tr.Len() / 2; j < tr.Len(); j++ {
			if err := c.Send(tr.At(j)); err != nil {
				return fail("%s: streaming second half: %v", name, err)
			}
		}
		ack, err := c.Close()
		if err != nil {
			return fail("%s: closing: %v", name, err)
		}
		failovers += c.Failovers()
		backend := func(*event.Trace) (conformance.BackendResult, error) {
			res := conformance.BackendResult{Races: c.Races()}
			if len(ack.RuleFires) == obs.NumRules+1 {
				copy(res.RuleFires[:], ack.RuleFires)
				res.HasRuleFires = true
			}
			return res, nil
		}
		if div := conformance.CheckBackend("cluster", backend, tr); div != nil {
			divergences++
			fmt.Fprintf(os.Stderr, "drill: DIVERGENCE %s (failovers=%d): %v\n", name, c.Failovers(), div)
		}
	}

	fmt.Printf("drill: %d sessions converged, %d divergences, %d failovers (%d binary, %d json wire)\n",
		len(names)-divergences, divergences, failovers, binSessions, len(names)-binSessions)
	// A divergence is exactly the incident the flight recorders exist
	// for: make every reachable node keep a local dump before exiting.
	reason := ""
	if divergences > 0 {
		reason = "conformance-divergence"
	}
	if *flightOut != "" || reason != "" {
		collectDrillFlight(fleet, *flightOut, reason)
	}
	if divergences > 0 {
		return resilience.ExitRace
	}
	if failovers == 0 {
		fmt.Fprintln(os.Stderr, "drill: no client failed over — the kill hit nothing; drill proves nothing")
		return resilience.ExitRuntime
	}
	return resilience.ExitClean
}

// collectDrillFlight scrapes each member's flight dump after a drill:
// written under dir when set, triggering node-local dumps when reason
// is nonempty. The victim is dead and simply does not answer.
func collectDrillFlight(fleet []string, dir, reason string) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "goldilocksctl drill: flight collection:", err)
			return
		}
	}
	for _, addr := range fleet {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		body, err := server.ScrapeFlight(ctx, addr, reason)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "drill: flight scrape of %s failed: %v\n", addr, err)
			continue
		}
		if dir == "" {
			continue // reason-triggered local dumps were the point
		}
		path := filepath.Join(dir, sanitizeNode(addr)+".flight.jsonl")
		if err := os.WriteFile(path, body, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "drill: writing %s: %v\n", path, err)
			continue
		}
		fmt.Fprintf(os.Stderr, "drill: flight dump of %s -> %s\n", addr, path)
	}
}

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "goldilocksctl drill: "+format+"\n", args...)
	return resilience.ExitRuntime
}

// drillCorpus is the seed corpus: every Section 2 scenario, plus the
// checked-in conformance counterexamples when a corpus dir is given.
func drillCorpus(dir string) (map[string]*event.Trace, error) {
	out := make(map[string]*event.Trace)
	for _, sc := range scenarios.All() {
		out["scenario-"+sc.Name] = sc.Trace
	}
	if dir != "" {
		entries, err := conformance.LoadCorpus(dir)
		if err != nil {
			return nil, fmt.Errorf("loading corpus %s: %w", dir, err)
		}
		for _, e := range entries {
			out["corpus-"+strings.TrimSuffix(e.Name, ".jsonl")] = e.Trace
		}
	}
	return out, nil
}
