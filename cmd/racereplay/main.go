// Command racereplay analyzes a recorded execution trace offline: it
// replays the linearization through the chosen detectors and the
// happens-before oracle and reports every race. Traces are produced by
// cmd/goldilocks -record (legacy JSON or the .jsonl checksummed
// streaming format), or by any tool using event.WriteTrace /
// event.WriteTraceStream. A truncated or partially corrupted streaming
// trace is salvaged: the longest valid prefix replays and the number of
// dropped records is reported.
//
// Usage:
//
//	racereplay [-detector goldilocks|spec|vectorclock|eraser|basic|all] trace.json
//	racereplay -oracle trace.json     # exact extended-race pairs
//	racereplay -serializability trace.json  # conflict-serializability check
//
// Exit codes: 0 no races, 1 at least one race (or, with
// -serializability, a non-serializable execution), 2 usage error, 3
// runtime failure (unreadable trace).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/detectors/basic"
	"goldilocks/internal/detectors/eraser"
	"goldilocks/internal/detectors/regiontrack"
	"goldilocks/internal/event"
	"goldilocks/internal/hb"
	"goldilocks/internal/obs"
	"goldilocks/internal/resilience"
)

// errUsage marks bad flags or arguments for exit-code mapping.
var errUsage = errors.New("usage error")

// exitFor maps a replay outcome to the standard exit code.
func exitFor(nraces int, err error) int {
	switch {
	case errors.Is(err, errUsage):
		return resilience.ExitUsage
	case err != nil:
		return resilience.ExitRuntime
	case nraces > 0:
		return resilience.ExitRace
	default:
		return resilience.ExitClean
	}
}

func main() {
	var (
		detName   = flag.String("detector", "goldilocks", "goldilocks, spec, vectorclock, eraser, basic, or all")
		oracle    = flag.Bool("oracle", false, "enumerate exact extended-race pairs via the happens-before oracle")
		serial    = flag.Bool("serializability", false, "check conflict-serializability of the trace's transactional regions (RegionTrack-style)")
		lockRgns  = flag.Bool("lockregions", false, "with -serializability: also treat outermost lock-protected spans as atomic regions")
		statsJSON = flag.String("stats-json", "", "write per-detector rule-fire counts and races (with provenance) to this file; - for stdout")
		remote    = flag.String("remote", "", "replay through the goldilocksd at this address (or comma-separated cluster list, with failover) instead of an in-process detector (see docs/SERVICE.md)")
		session   = flag.String("session", "", "session id for -remote (default: derived from the trace file name); a resumed session replays only the remaining suffix")
		stopAfter = flag.Int("stop-after", 0, "with -remote: stream only this many actions, flush, and detach without closing (the session stays resumable; for restart drills)")
		wire      = flag.String("wire", "auto", "with -remote: wire format, auto (negotiate binary, fall back to JSON) or json (force line-JSON)")
		fastPath  = flag.Bool("fastpath", true, "enable the epoch fast path in the local goldilocks engine (detection verdicts are identical either way)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: racereplay [flags] trace.json")
		flag.Usage()
		os.Exit(resilience.ExitUsage)
	}
	localFastPath = *fastPath
	if *wire != "auto" && *wire != "json" {
		fmt.Fprintf(os.Stderr, "racereplay: unknown -wire %q (auto or json)\n", *wire)
		os.Exit(resilience.ExitUsage)
	}
	if *remote != "" {
		n, err := replayRemote(flag.Arg(0), *remote, *session, *stopAfter, *wire == "json", os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "racereplay:", err)
		}
		os.Exit(exitFor(n, err))
	}
	if *serial {
		n, err := replaySerializability(flag.Arg(0), *lockRgns, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "racereplay:", err)
		}
		os.Exit(exitFor(n, err))
	}
	n, err := replay(flag.Arg(0), *detName, *oracle, *statsJSON, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "racereplay:", err)
	}
	os.Exit(exitFor(n, err))
}

// replaySerializability loads a trace and runs the RegionTrack-style
// conflict-serializability checker over it; the return value counts the
// violations found (mapped to the race exit code — a non-serializable
// execution is a flagged execution).
func replaySerializability(path string, lockRegions bool, out *os.File) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	tr, dropped, err := event.ReadTraceAuto(f)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(out, "trace: %d actions, %d threads, %d variables\n",
		tr.Len(), len(tr.Threads()), len(tr.Vars()))
	if dropped > 0 {
		fmt.Fprintf(out, "trace damaged: checking the valid %d-action prefix, %d records dropped\n",
			tr.Len(), dropped)
	}
	opts := regiontrack.DefaultOptions()
	opts.LockRegions = lockRegions
	races, sum := regiontrack.Check(tr, opts)
	fmt.Fprintf(out, "goldilocks (via regiontrack): %d races\n", len(races))
	for _, v := range sum.Violations {
		fmt.Fprintf(out, "serializability violation at action %d (%v): region %d -> region %d closes cycle %v (threads %v)\n",
			v.Pos, tr.At(v.Pos), v.From, v.To, v.Cycle, v.Threads)
	}
	verdict := "serializable"
	if !sum.Serializable {
		verdict = "NOT serializable"
	}
	fmt.Fprintf(out, "regiontrack: %s — %d regions (%d multi-event), %d conflict edges, %d violations\n",
		verdict, sum.Regions, sum.MultiRegions, sum.Edges, sum.ViolationTotal)
	return sum.ViolationTotal, nil
}

// detectorFactories build each detector; tel (nil unless -stats-json is
// set) is attached where the implementation supports telemetry — both
// Goldilocks engines count the same event-level rule fires, so their
// -stats-json output is directly comparable.
// localFastPath mirrors -fastpath into the goldilocks factory.
var localFastPath = true

var detectorFactories = map[string]func(tel *obs.Telemetry) detect.Detector{
	"goldilocks": func(tel *obs.Telemetry) detect.Detector {
		opts := core.DefaultOptions()
		opts.Telemetry = tel
		opts.FastPath = localFastPath
		return core.NewEngine(opts)
	},
	"spec": func(tel *obs.Telemetry) detect.Detector {
		s := core.NewSpecEngine()
		s.SetTelemetry(tel)
		return s
	},
	"vectorclock": func(*obs.Telemetry) detect.Detector { return hb.NewDetector() },
	"eraser":      func(*obs.Telemetry) detect.Detector { return eraser.New() },
	"basic":       func(*obs.Telemetry) detect.Detector { return basic.New() },
}

// replayRaceDoc is one race in the -stats-json document.
type replayRaceDoc struct {
	Var        string          `json:"var"`
	Access     string          `json:"access"`
	Pos        int             `json:"pos"`
	Prev       string          `json:"prev,omitempty"`
	Provenance *obs.Provenance `json:"provenance,omitempty"`
}

// replayStats is the per-detector entry of the -stats-json document.
type replayStats struct {
	Detector  string            `json:"detector"`
	RuleFires map[string]uint64 `json:"rule_fires,omitempty"`
	Races     []replayRaceDoc   `json:"races"`
}

// replay loads a trace and reports races; it returns the number of
// races found by the last analysis run.
func replay(path, detName string, useOracle bool, statsJSON string, out *os.File) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	tr, dropped, err := event.ReadTraceAuto(f)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(out, "trace: %d actions, %d threads, %d variables\n",
		tr.Len(), len(tr.Threads()), len(tr.Vars()))
	if dropped > 0 {
		fmt.Fprintf(out, "trace damaged: replaying the valid %d-action prefix, %d records dropped\n",
			tr.Len(), dropped)
	}

	if useOracle {
		o := hb.NewOracle(tr)
		pairs := o.Races()
		for _, p := range pairs {
			fmt.Fprintf(out, "race pair on %v: action %d (%v) vs action %d (%v)\n",
				p.Var, p.I, tr.At(p.I), p.J, tr.At(p.J))
		}
		fmt.Fprintf(out, "oracle: %d extended race pairs\n", len(pairs))
		return len(pairs), nil
	}

	names := []string{detName}
	if detName == "all" {
		names = []string{"goldilocks", "spec", "vectorclock", "eraser", "basic"}
	}
	total := 0
	var stats []replayStats
	for _, name := range names {
		mk, ok := detectorFactories[name]
		if !ok {
			return 0, fmt.Errorf("%w: unknown detector %q", errUsage, name)
		}
		var tel *obs.Telemetry
		if statsJSON != "" && (name == "goldilocks" || name == "spec") {
			tel = obs.NewTelemetry()
		}
		races := detect.RunTrace(mk(tel), tr)
		fmt.Fprintf(out, "%s: %d races\n", name, len(races))
		for _, r := range races {
			fmt.Fprintf(out, "  %v\n", &r)
			if r.Prov != nil {
				fmt.Fprintf(out, "    provenance: %v\n", r.Prov)
			}
		}
		if statsJSON != "" {
			stats = append(stats, replayStatsFor(name, tel, races))
		}
		total = len(races)
	}
	if statsJSON != "" {
		if err := writeReplayStats(statsJSON, stats); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// replayStatsFor builds the -stats-json entry for one detector run. The
// rule-fire map is omitted for detectors without telemetry support
// (vector clock, Eraser, basic), which get a nil tel.
func replayStatsFor(name string, tel *obs.Telemetry, races []detect.Race) replayStats {
	st := replayStats{Detector: name, Races: make([]replayRaceDoc, len(races))}
	for i, r := range races {
		st.Races[i] = replayRaceDoc{Var: r.Var.String(), Access: r.Access.String(), Pos: r.Pos, Provenance: r.Prov}
		if r.HasPrev {
			st.Races[i].Prev = r.Prev.String()
		}
	}
	if tel != nil {
		fires := tel.RuleFires()
		st.RuleFires = make(map[string]uint64, obs.NumRules)
		for rule := 1; rule <= obs.NumRules; rule++ {
			st.RuleFires[fmt.Sprintf("%d:%s", rule, obs.RuleName(rule))] = fires[rule]
		}
	}
	return st
}

// writeReplayStats writes the document to path ("-" is stdout).
func writeReplayStats(path string, stats []replayStats) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"detectors": stats})
}
