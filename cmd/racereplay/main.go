// Command racereplay analyzes a recorded execution trace offline: it
// replays the linearization through the chosen detectors and the
// happens-before oracle and reports every race. Traces are produced by
// cmd/goldilocks -record (legacy JSON or the .jsonl checksummed
// streaming format), or by any tool using event.WriteTrace /
// event.WriteTraceStream. A truncated or partially corrupted streaming
// trace is salvaged: the longest valid prefix replays and the number of
// dropped records is reported.
//
// Usage:
//
//	racereplay [-detector goldilocks|spec|vectorclock|eraser|basic|all] trace.json
//	racereplay -oracle trace.json     # exact extended-race pairs
//
// Exit codes: 0 no races, 1 at least one race, 2 usage error, 3 runtime
// failure (unreadable trace).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/detectors/basic"
	"goldilocks/internal/detectors/eraser"
	"goldilocks/internal/event"
	"goldilocks/internal/hb"
	"goldilocks/internal/resilience"
)

// errUsage marks bad flags or arguments for exit-code mapping.
var errUsage = errors.New("usage error")

// exitFor maps a replay outcome to the standard exit code.
func exitFor(nraces int, err error) int {
	switch {
	case errors.Is(err, errUsage):
		return resilience.ExitUsage
	case err != nil:
		return resilience.ExitRuntime
	case nraces > 0:
		return resilience.ExitRace
	default:
		return resilience.ExitClean
	}
}

func main() {
	var (
		detName = flag.String("detector", "goldilocks", "goldilocks, spec, vectorclock, eraser, basic, or all")
		oracle  = flag.Bool("oracle", false, "enumerate exact extended-race pairs via the happens-before oracle")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: racereplay [flags] trace.json")
		flag.Usage()
		os.Exit(resilience.ExitUsage)
	}
	n, err := replay(flag.Arg(0), *detName, *oracle, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "racereplay:", err)
	}
	os.Exit(exitFor(n, err))
}

var detectorFactories = map[string]func() detect.Detector{
	"goldilocks":  func() detect.Detector { return core.New() },
	"spec":        func() detect.Detector { return core.NewSpecEngine() },
	"vectorclock": func() detect.Detector { return hb.NewDetector() },
	"eraser":      func() detect.Detector { return eraser.New() },
	"basic":       func() detect.Detector { return basic.New() },
}

// replay loads a trace and reports races; it returns the number of
// races found by the last analysis run.
func replay(path, detName string, useOracle bool, out *os.File) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	tr, dropped, err := event.ReadTraceAuto(f)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(out, "trace: %d actions, %d threads, %d variables\n",
		tr.Len(), len(tr.Threads()), len(tr.Vars()))
	if dropped > 0 {
		fmt.Fprintf(out, "trace damaged: replaying the valid %d-action prefix, %d records dropped\n",
			tr.Len(), dropped)
	}

	if useOracle {
		o := hb.NewOracle(tr)
		pairs := o.Races()
		for _, p := range pairs {
			fmt.Fprintf(out, "race pair on %v: action %d (%v) vs action %d (%v)\n",
				p.Var, p.I, tr.At(p.I), p.J, tr.At(p.J))
		}
		fmt.Fprintf(out, "oracle: %d extended race pairs\n", len(pairs))
		return len(pairs), nil
	}

	names := []string{detName}
	if detName == "all" {
		names = []string{"goldilocks", "spec", "vectorclock", "eraser", "basic"}
	}
	total := 0
	for _, name := range names {
		mk, ok := detectorFactories[name]
		if !ok {
			return 0, fmt.Errorf("%w: unknown detector %q", errUsage, name)
		}
		races := detect.RunTrace(mk(), tr)
		fmt.Fprintf(out, "%s: %d races\n", name, len(races))
		for _, r := range races {
			fmt.Fprintf(out, "  %v\n", &r)
		}
		total = len(races)
	}
	return total, nil
}
