package main

import (
	"os"
	"path/filepath"
	"testing"

	"goldilocks/internal/event"
)

func writeTraceFile(t *testing.T, tr *event.Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := event.WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func racyTrace() *event.Trace {
	return event.NewBuilder().
		Fork(1, 2).
		Write(1, 10, 0).
		Write(2, 10, 0).
		Trace()
}

func cleanTrace() *event.Trace {
	return event.NewBuilder().
		Fork(1, 2).
		Acquire(1, 20).Write(1, 10, 0).Release(1, 20).
		Acquire(2, 20).Write(2, 10, 0).Release(2, 20).
		Trace()
}

func TestReplayDetectors(t *testing.T) {
	racy := writeTraceFile(t, racyTrace())
	clean := writeTraceFile(t, cleanTrace())
	for _, det := range []string{"goldilocks", "spec", "vectorclock", "eraser", "basic", "all"} {
		n, err := replay(racy, det, false, os.Stdout)
		if err != nil {
			t.Fatalf("%s: %v", det, err)
		}
		if n == 0 {
			t.Errorf("%s: no race on racy trace", det)
		}
	}
	for _, det := range []string{"goldilocks", "spec", "vectorclock"} {
		n, err := replay(clean, det, false, os.Stdout)
		if err != nil {
			t.Fatalf("%s: %v", det, err)
		}
		if n != 0 {
			t.Errorf("%s: %d false races on clean trace", det, n)
		}
	}
}

func TestReplayOracle(t *testing.T) {
	racy := writeTraceFile(t, racyTrace())
	n, err := replay(racy, "", true, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("oracle pairs = %d, want 1", n)
	}
}

func TestReplayErrors(t *testing.T) {
	if _, err := replay(filepath.Join(t.TempDir(), "nope.json"), "goldilocks", false, os.Stdout); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := replay(bad, "goldilocks", false, os.Stdout); err == nil {
		t.Error("corrupt file accepted")
	}
	good := writeTraceFile(t, cleanTrace())
	if _, err := replay(good, "nonsense", false, os.Stdout); err == nil {
		t.Error("unknown detector accepted")
	}
}
