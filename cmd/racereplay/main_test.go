package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"goldilocks/internal/event"
	"goldilocks/internal/resilience"
)

func writeTraceFile(t *testing.T, tr *event.Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := event.WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeStreamFile(t *testing.T, tr *event.Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := event.WriteTraceStream(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func racyTrace() *event.Trace {
	return event.NewBuilder().
		Fork(1, 2).
		Write(1, 10, 0).
		Write(2, 10, 0).
		Trace()
}

func cleanTrace() *event.Trace {
	return event.NewBuilder().
		Fork(1, 2).
		Acquire(1, 20).Write(1, 10, 0).Release(1, 20).
		Acquire(2, 20).Write(2, 10, 0).Release(2, 20).
		Trace()
}

func TestReplayDetectors(t *testing.T) {
	racy := writeTraceFile(t, racyTrace())
	clean := writeTraceFile(t, cleanTrace())
	for _, det := range []string{"goldilocks", "spec", "vectorclock", "eraser", "basic", "all"} {
		n, err := replay(racy, det, false, "", os.Stdout)
		if err != nil {
			t.Fatalf("%s: %v", det, err)
		}
		if n == 0 {
			t.Errorf("%s: no race on racy trace", det)
		}
		if code := exitFor(n, err); code != resilience.ExitRace {
			t.Errorf("%s: exit code %d, want %d", det, code, resilience.ExitRace)
		}
	}
	for _, det := range []string{"goldilocks", "spec", "vectorclock"} {
		n, err := replay(clean, det, false, "", os.Stdout)
		if err != nil {
			t.Fatalf("%s: %v", det, err)
		}
		if n != 0 {
			t.Errorf("%s: %d false races on clean trace", det, n)
		}
		if code := exitFor(n, err); code != resilience.ExitClean {
			t.Errorf("%s: exit code %d, want %d", det, code, resilience.ExitClean)
		}
	}
}

// TestReplayStreamFormat: the auto-detected streaming format replays
// identically to the legacy format.
func TestReplayStreamFormat(t *testing.T) {
	racy := writeStreamFile(t, racyTrace())
	n, err := replay(racy, "goldilocks", false, "", os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("no race on racy streaming trace")
	}
}

// TestReplayTruncatedStream: a streaming trace cut mid-record still
// replays its valid prefix and reports the dropped tail.
func TestReplayTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := event.WriteTraceStream(&buf, racyTrace()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut inside the final record: the racy second write is lost, the
	// fork and first write survive.
	cut := bytes.LastIndexByte(full[:len(full)-1], '\n') + 5
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := os.Create(filepath.Join(t.TempDir(), "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	n, err := replay(path, "goldilocks", false, "", out)
	if err != nil {
		t.Fatalf("truncated stream not salvaged: %v", err)
	}
	if n != 0 {
		t.Errorf("%d races from a prefix that lost the racing access", n)
	}
	data, _ := os.ReadFile(out.Name())
	if !bytes.Contains(data, []byte("1 records dropped")) {
		t.Errorf("output does not report the dropped record:\n%s", data)
	}
	if !bytes.Contains(data, []byte("trace: 2 actions")) {
		t.Errorf("output does not show the 2-action prefix:\n%s", data)
	}
}

func TestReplayOracle(t *testing.T) {
	racy := writeTraceFile(t, racyTrace())
	n, err := replay(racy, "", true, "", os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("oracle pairs = %d, want 1", n)
	}
}

func TestReplayErrors(t *testing.T) {
	n, err := replay(filepath.Join(t.TempDir(), "nope.json"), "goldilocks", false, "", os.Stdout)
	if err == nil {
		t.Error("missing file accepted")
	}
	if code := exitFor(n, err); code != resilience.ExitRuntime {
		t.Errorf("missing file: exit code %d, want %d", code, resilience.ExitRuntime)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := replay(bad, "goldilocks", false, "", os.Stdout); err == nil {
		t.Error("corrupt file accepted")
	}
	good := writeTraceFile(t, cleanTrace())
	n, err = replay(good, "nonsense", false, "", os.Stdout)
	if err == nil {
		t.Error("unknown detector accepted")
	}
	if !errors.Is(err, errUsage) {
		t.Errorf("unknown detector error %v is not a usage error", err)
	}
	if code := exitFor(n, err); code != resilience.ExitUsage {
		t.Errorf("unknown detector: exit code %d, want %d", code, resilience.ExitUsage)
	}
}
