package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"goldilocks/internal/event"
	"goldilocks/internal/server"
)

// replayRemote streams a recorded trace through a goldilocksd session
// and reports the daemon's verdicts. A resumed session (the daemon
// already applied a prefix, e.g. before a restart) streams only the
// remaining suffix; verdict positions are global linearization indices
// either way, so the output is directly comparable to a local replay.
//
// stopAfter > 0 streams at most that many actions, waits until they are
// applied, and detaches without the close handshake — the session stays
// resumable, which is how the CI service job interrupts a session
// mid-trace before killing the daemon.
func replayRemote(path, addr, sessionID string, stopAfter int, forceJSON bool, out *os.File) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	tr, dropped, err := event.ReadTraceAuto(f)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(out, "trace: %d actions, %d threads, %d variables\n",
		tr.Len(), len(tr.Threads()), len(tr.Vars()))
	if dropped > 0 {
		fmt.Fprintf(out, "trace damaged: replaying the valid %d-action prefix, %d records dropped\n",
			tr.Len(), dropped)
	}
	if sessionID == "" {
		sessionID = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}

	// addr may be a single daemon or a comma-separated fleet list; a
	// fleet client follows NOT_OWNER redirects and fails over.
	c, err := server.DialAutoConfig(context.Background(), addr, sessionID,
		server.DialConfig{ForceJSON: forceJSON})
	if err != nil {
		return 0, err
	}
	wire := "binary"
	if !c.Binary() {
		wire = "json"
	}
	fmt.Fprintf(out, "wire format: %s\n", wire)
	start := int(c.Next())
	if c.Resumed() {
		fmt.Fprintf(out, "session %s resumed at action %d\n", sessionID, start)
	}
	if start > tr.Len() {
		c.Abandon()
		return 0, fmt.Errorf("session %q already at %d, past trace end %d", sessionID, start, tr.Len())
	}
	end := tr.Len()
	if stopAfter > 0 && start+stopAfter < end {
		end = start + stopAfter
	}
	for i := start; i < end; i++ {
		if err := c.Send(tr.At(i)); err != nil {
			c.Abandon()
			return 0, err
		}
	}

	if end < tr.Len() {
		ack, err := c.Flush()
		if err != nil {
			return 0, err
		}
		c.Abandon()
		fmt.Fprintf(out, "detached at action %d (%d races so far); session %s resumable\n",
			ack.Applied, ack.Races, sessionID)
		return reportRemote(c, out, false)
	}

	ack, err := c.Close()
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(out, "remote session applied %d actions\n", ack.Applied)
	return reportRemote(c, out, true)
}

// reportRemote prints this connection's verdicts. For a completed
// session the count is the exit-code basis, same as a local replay.
func reportRemote(c *server.Client, out *os.File, complete bool) (int, error) {
	races := c.Races()
	label := "remote"
	if !complete {
		label = "remote (partial)"
	}
	fmt.Fprintf(out, "%s: %d races\n", label, len(races))
	for _, r := range races {
		fmt.Fprintf(out, "  %v\n", &r)
		if r.Prov != nil {
			fmt.Fprintf(out, "    provenance: %v\n", r.Prov)
		}
	}
	return len(races), nil
}
