// Command mjcheck runs the static race analyses on an MJ program and
// prints their reports: the fields, access sites, and methods each
// analysis proves race-free — the information the runtime uses to skip
// dynamic checks.
//
// Usage:
//
//	mjcheck [-analysis chord|rcc|both] [-json] program.mj
//
// Exit codes: 0 success, 2 usage error, 3 runtime failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"goldilocks/internal/mj"
	"goldilocks/internal/resilience"
	"goldilocks/internal/static"
)

func main() {
	analysis := flag.String("analysis", "both", "chord, rcc, or both")
	asJSON := flag.Bool("json", false, "machine-readable JSON report on stdout")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mjcheck [-analysis chord|rcc|both] [-json] program.mj")
		os.Exit(resilience.ExitUsage)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mjcheck:", err)
		os.Exit(resilience.ExitRuntime)
	}
	prog, err := mj.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mjcheck:", err)
		os.Exit(resilience.ExitRuntime)
	}
	if err := mj.Check(prog); err != nil {
		fmt.Fprintln(os.Stderr, "mjcheck:", err)
		os.Exit(resilience.ExitRuntime)
	}

	var docs []analysisDoc
	if *analysis == "chord" || *analysis == "both" {
		docs = append(docs, report("chord", static.Chord(prog), prog, *asJSON))
	}
	if *analysis == "rcc" || *analysis == "both" {
		// A fresh parse keeps the two analyses' sites independent.
		prog2, _ := mj.Parse(string(src))
		if err := mj.Check(prog2); err != nil {
			fmt.Fprintln(os.Stderr, "mjcheck:", err)
			os.Exit(resilience.ExitRuntime)
		}
		r, err := static.Rcc(prog2)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mjcheck: rcc:", err)
			os.Exit(resilience.ExitRuntime)
		}
		docs = append(docs, report("rcc", r, prog2, *asJSON))
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"program": flag.Arg(0), "analyses": docs}); err != nil {
			fmt.Fprintln(os.Stderr, "mjcheck:", err)
			os.Exit(resilience.ExitRuntime)
		}
	}
}

// analysisDoc is one analysis entry of the -json report.
type analysisDoc struct {
	Analysis    string   `json:"analysis"`
	SafeSites   int      `json:"safe_sites"`
	TotalSites  int      `json:"total_sites"`
	SafeFields  []string `json:"safe_fields"`
	SafeMethods []string `json:"safe_methods"`
}

// report summarizes one analysis result, printing the human-readable
// form unless the caller asked for JSON only.
func report(name string, r *static.Result, prog *mj.Program, jsonOnly bool) analysisDoc {
	fields := []string{}
	for k := range r.SafeFields {
		fields = append(fields, k.String())
	}
	sort.Strings(fields)
	methods := []string{}
	for m := range r.SafeMethods {
		methods = append(methods, m.QName())
	}
	sort.Strings(methods)
	doc := analysisDoc{
		Analysis:    name,
		SafeSites:   r.SafeSiteCount(),
		TotalSites:  mj.NumSites(prog),
		SafeFields:  fields,
		SafeMethods: methods,
	}
	if jsonOnly {
		return doc
	}

	fmt.Printf("=== %s ===\n", name)
	fmt.Printf("access sites proven race-free: %d / %d\n", doc.SafeSites, doc.TotalSites)
	fmt.Printf("race-free variables (%d):\n", len(fields))
	for _, f := range fields {
		fmt.Printf("  %s\n", f)
	}
	fmt.Printf("race-free methods (%d):\n", len(methods))
	for _, m := range methods {
		fmt.Printf("  %s\n", m)
	}
	fmt.Println()
	return doc
}
