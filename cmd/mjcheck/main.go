// Command mjcheck runs the static race analyses on an MJ program and
// prints their reports: the fields, access sites, and methods each
// analysis proves race-free — the information the runtime uses to skip
// dynamic checks.
//
// Usage:
//
//	mjcheck [-analysis chord|rcc|both] program.mj
//
// Exit codes: 0 success, 2 usage error, 3 runtime failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"goldilocks/internal/mj"
	"goldilocks/internal/resilience"
	"goldilocks/internal/static"
)

func main() {
	analysis := flag.String("analysis", "both", "chord, rcc, or both")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mjcheck [-analysis chord|rcc|both] program.mj")
		os.Exit(resilience.ExitUsage)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mjcheck:", err)
		os.Exit(resilience.ExitRuntime)
	}
	prog, err := mj.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mjcheck:", err)
		os.Exit(resilience.ExitRuntime)
	}
	if err := mj.Check(prog); err != nil {
		fmt.Fprintln(os.Stderr, "mjcheck:", err)
		os.Exit(resilience.ExitRuntime)
	}

	if *analysis == "chord" || *analysis == "both" {
		report("chord", static.Chord(prog), prog)
	}
	if *analysis == "rcc" || *analysis == "both" {
		// A fresh parse keeps the two analyses' sites independent.
		prog2, _ := mj.Parse(string(src))
		if err := mj.Check(prog2); err != nil {
			fmt.Fprintln(os.Stderr, "mjcheck:", err)
			os.Exit(resilience.ExitRuntime)
		}
		r, err := static.Rcc(prog2)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mjcheck: rcc:", err)
			os.Exit(resilience.ExitRuntime)
		}
		report("rcc", r, prog2)
	}
}

func report(name string, r *static.Result, prog *mj.Program) {
	fmt.Printf("=== %s ===\n", name)
	fmt.Printf("access sites proven race-free: %d / %d\n", r.SafeSiteCount(), mj.NumSites(prog))

	var fields []string
	for k := range r.SafeFields {
		fields = append(fields, k.String())
	}
	sort.Strings(fields)
	fmt.Printf("race-free variables (%d):\n", len(fields))
	for _, f := range fields {
		fmt.Printf("  %s\n", f)
	}

	var methods []string
	for m := range r.SafeMethods {
		methods = append(methods, m.QName())
	}
	sort.Strings(methods)
	fmt.Printf("race-free methods (%d):\n", len(methods))
	for _, m := range methods {
		fmt.Printf("  %s\n", m)
	}
	fmt.Println()
}
