package main

import (
	"testing"

	"goldilocks/internal/mj"
	"goldilocks/internal/static"
)

// TestReportRuns exercises the report path over both analyses.
func TestReportRuns(t *testing.T) {
	src := `
class Counter {
	int n;
	synchronized void inc() { n = n + 1; }
}
class Main {
	Counter c;
	void work() { c.inc(); }
	void main() {
		c = new Counter();
		thread a = spawn this.work();
		thread b = spawn this.work();
		join(a);
		join(b);
	}
}
`
	prog := mj.MustCheck(src)
	report("chord", static.Chord(prog), prog, false)
	prog2 := mj.MustCheck(src)
	r, err := static.Rcc(prog2)
	if err != nil {
		t.Fatal(err)
	}
	report("rcc", r, prog2, false)
}
