// Quickstart: the Goldilocks race-aware runtime from Go.
//
// Two threads increment a shared counter — first correctly, handing
// ownership over with a lock; then incorrectly, with no synchronization.
// The second attempt throws a DataRaceException at the exact access that
// would complete the race, which the offending thread catches and
// handles.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"goldilocks/internal/core"
	"goldilocks/internal/jrt"
)

func main() {
	rt := jrt.NewRuntime(jrt.Config{
		Detector: core.New(), // the generalized Goldilocks engine
		Policy:   jrt.Throw,  // raise DataRaceException at the racy access
		Mode:     jrt.Deterministic,
		Seed:     7,
	})

	rt.Run(func(t *jrt.Thread) {
		counterClass := rt.DefineClass("Counter", jrt.FieldDecl{Name: "n"})
		counter := t.New(counterClass)
		lock := t.New(rt.DefineClass("Lock"))
		n := counterClass.MustFieldID("n")

		// Correct: both threads increment under the same lock.
		t.Synchronized(lock, func() { t.Set(counter, n, 0) })
		worker := t.Spawn(func(u *jrt.Thread) {
			u.Synchronized(lock, func() {
				v, _ := u.Get(counter, n).(int)
				u.Set(counter, n, v+1)
			})
		})
		t.Synchronized(lock, func() {
			v, _ := t.Get(counter, n).(int)
			t.Set(counter, n, v+1)
		})
		t.Join(worker)
		fmt.Printf("lock-guarded counter: %v (no exception — execution is sequentially consistent)\n",
			t.Get(counter, n))

		// Incorrect: a second counter incremented with no synchronization.
		racy := t.New(counterClass)
		t.Set(racy, n, 0)
		racer := t.Spawn(func(u *jrt.Thread) {
			if drx := u.Try(func() {
				u.Set(racy, n, 1)
			}); drx != nil {
				fmt.Printf("spawned thread caught: %v\n", drx)
			}
		})
		if drx := t.Try(func() {
			t.Set(racy, n, 2)
		}); drx != nil {
			fmt.Printf("main thread caught: %v\n", drx)
		}
		t.Join(racer)
	})

	fmt.Printf("races observed by the runtime: %d\n", len(rt.Races()))
}
