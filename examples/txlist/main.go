// Example 3 of the paper: a linked list protected by software
// transactions, with thread-locality before insertion and after
// removal. The program runs in MJ on the transaction-aware runtime
// (atomic blocks execute through the stm package, and the detector sees
// their commit(R, W) actions), and the Figure 7 lockset evolution is
// printed from the algorithm's own rules.
//
// Run with: go run ./examples/txlist
package main

import (
	"fmt"
	"os"

	"goldilocks/internal/bench"
	"goldilocks/internal/core"
	"goldilocks/internal/jrt"
	"goldilocks/internal/mj"
)

const src = `
class Foo {
	int data;
	Foo nxt;
}
class List {
	Foo head;
}
class Main {
	List list;

	void inserter() {
		Foo t1 = new Foo();
		t1.data = 42; // thread-local initialization
		atomic {
			t1.nxt = list.head;
			list.head = t1;
		}
	}
	void sweeper() {
		atomic {
			Foo iter = list.head;
			while (iter != null) {
				iter.data = 0;
				iter = iter.nxt;
			}
		}
	}
	void remover() {
		Foo t3 = null;
		atomic {
			t3 = list.head;
			if (t3 != null) { list.head = t3.nxt; }
		}
		if (t3 != null) {
			t3.data = t3.data + 1; // local to this thread again
			print("remover: final data =", t3.data);
		}
	}
	void main() {
		list = new List();
		atomic { list.head = null; }
		thread a = spawn this.inserter();
		join(a);
		thread b = spawn this.sweeper();
		thread c = spawn this.remover();
		join(b);
		join(c);
		print("done; no DataRaceException was thrown");
	}
}
`

func main() {
	fmt.Print(bench.Figure7())
	fmt.Println()

	rt := jrt.NewRuntime(jrt.Config{
		Detector: core.New(),
		Policy:   jrt.Throw,
		Mode:     jrt.Deterministic,
		Seed:     3,
	})
	prog := mj.MustCheck(src)
	interp, err := mj.NewInterp(prog, mj.InterpConfig{Runtime: rt, Out: os.Stdout})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	races, err := interp.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("races detected: %d (transactions ordered the accesses)\n", len(races))
	commits, aborts := interp.TMStats()
	fmt.Printf("transactions: %d committed, %d aborted and retried\n", commits, aborts)
}
