// Package examples_test builds and runs every runnable example under
// the detector and asserts the verdict the README documents: the racy
// demonstrations catch their race (and handle it), the race-free ones
// stay silent. This keeps the examples honest — a detector regression
// that flips an example's verdict fails CI even if no unit test notices
// — and doubles as an end-to-end smoke of the public API and the MJ
// runtime.
package examples_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildDir compiles a main package and returns the binary path.
// Binaries are cached per test run in a shared temp dir.
func buildDir(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(binDir(t), filepath.Base(pkg))
	if _, err := os.Stat(bin); err == nil {
		return bin
	}
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	cmd.Dir = ".." // repo root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

var sharedBinDir string

func binDir(t *testing.T) string {
	t.Helper()
	if sharedBinDir == "" {
		dir, err := os.MkdirTemp("", "goldilocks-examples-*")
		if err != nil {
			t.Fatal(err)
		}
		sharedBinDir = dir
	}
	return sharedBinDir
}

func TestMain(m *testing.M) {
	code := m.Run()
	if sharedBinDir != "" {
		os.RemoveAll(sharedBinDir)
	}
	os.Exit(code)
}

// goExamples lists every Go example with its expected exit code and the
// output markers that pin its verdict (see examples/README.md).
var goExamples = []struct {
	name     string
	exitCode int
	markers  []string
	absent   []string // substrings that must NOT appear
}{
	{
		name:     "quickstart",
		exitCode: 0,
		markers:  []string{"races observed by the runtime: 1", "DataRaceException"},
	},
	{
		name:     "ftpserver",
		exitCode: 0,
		markers:  []string{"race detected and handled", "terminated gracefully"},
	},
	{
		name:     "ownership",
		exitCode: 0,
		// Precise detectors stay silent on the handoff; the imprecise
		// baselines must still false-alarm (that contrast is the example).
		markers: []string{"race-free ✓", "FALSE ALARM"},
	},
	{
		name:     "txlist",
		exitCode: 0,
		markers:  []string{"races detected: 0"},
		absent:   []string{"DataRaceException in"},
	},
	{
		name:     "accounts",
		exitCode: 0,
		markers:  []string{"withdraw interrupted", "final balances"},
	},
	{
		name:     "multiset",
		exitCode: 0,
		markers:  []string{"No DataRaceException was thrown"},
	},
}

func TestGoExamples(t *testing.T) {
	for _, ex := range goExamples {
		ex := ex
		t.Run(ex.name, func(t *testing.T) {
			bin := buildDir(t, filepath.Join("examples", ex.name))
			var out bytes.Buffer
			cmd := exec.Command(bin)
			cmd.Stdout, cmd.Stderr = &out, &out
			err := cmd.Run()
			code := 0
			if ee, ok := err.(*exec.ExitError); ok {
				code = ee.ExitCode()
			} else if err != nil {
				t.Fatalf("run: %v", err)
			}
			if code != ex.exitCode {
				t.Errorf("exit code %d, want %d\n%s", code, ex.exitCode, out.String())
			}
			for _, m := range ex.markers {
				if !strings.Contains(out.String(), m) {
					t.Errorf("output missing %q:\n%s", m, out.String())
				}
			}
			for _, m := range ex.absent {
				if strings.Contains(out.String(), m) {
					t.Errorf("output unexpectedly contains %q:\n%s", m, out.String())
				}
			}
		})
	}
}

// mjPrograms lists the MJ programs with their expected deterministic-
// scheduler verdicts: exit 0 for race-free runs, exit 1 when the run
// reports a race (racy.mj catches its DataRaceException, but the CLI
// still reports the race in its exit code).
var mjPrograms = []struct {
	name     string
	exitCode int
}{
	{"philosophers", 0},
	{"txbank", 0},
	{"handshake", 0},
	{"pipeline", 0},
	{"racy", 1},
}

func TestMJPrograms(t *testing.T) {
	cli := buildDir(t, filepath.Join("cmd", "goldilocks"))
	for _, p := range mjPrograms {
		p := p
		t.Run(p.name, func(t *testing.T) {
			var out bytes.Buffer
			cmd := exec.Command(cli, "-sched", "det", "-seed", "4", filepath.Join("mj", p.name+".mj"))
			cmd.Stdout, cmd.Stderr = &out, &out
			err := cmd.Run()
			code := 0
			if ee, ok := err.(*exec.ExitError); ok {
				code = ee.ExitCode()
			} else if err != nil {
				t.Fatalf("run: %v", err)
			}
			if code != p.exitCode {
				t.Errorf("exit code %d, want %d\n%s", code, p.exitCode, out.String())
			}
		})
	}
}
