// Example 1 of the paper (the Apache ftp-server scenario), written in
// MJ and executed on the race-aware runtime.
//
// The run() thread services commands on a connection while a time-out
// thread calls close(), nulling the connection's fields with no
// synchronization against run()'s accesses. When run() is about to
// touch m_writer after the unsynchronized close, the runtime throws a
// DataRaceException; the try/catch in run() handles it by shutting the
// command loop down gracefully instead of crashing on a
// NullPointerException later.
//
// Run with: go run ./examples/ftpserver
package main

import (
	"fmt"
	"os"

	"goldilocks/internal/core"
	"goldilocks/internal/jrt"
	"goldilocks/internal/mj"
)

const src = `
class Connection {
	int request;
	int writer;
	int reader;
	boolean closed;

	void run(int commands) {
		int served = 0;
		boolean open = true;
		while (open && served < commands) {
			try {
				// m_reader.readLine(); m_request.parse(); m_writer.send();
				int line = reader;
				int parsed = request + line;
				writer = parsed;
				served = served + 1;
			} catch {
				print("run(): DataRaceException — connection closed, exiting loop after", served, "commands");
				open = false;
			}
		}
		if (open) { print("run(): served all", served, "commands"); }
	}

	void close() {
		synchronized (this) {
			if (closed) { return; }
			closed = true;
		}
		request = 0;
		writer = 0;
		reader = 0;
		print("close(): connection torn down");
	}
}
class Main {
	void main() {
		Connection conn = new Connection();
		conn.request = 1;
		conn.writer = 2;
		conn.reader = 3;
		conn.closed = false;
		thread worker = spawn conn.run(1000);
		thread timeout = spawn conn.close();
		join(worker);
		join(timeout);
		print("main: both threads terminated gracefully");
	}
}
`

func main() {
	// Scan seeds until the close() lands in the middle of the command
	// loop, so the exception path is demonstrated.
	for seed := int64(0); seed < 50; seed++ {
		rt := jrt.NewRuntime(jrt.Config{
			Detector: core.New(),
			Policy:   jrt.Throw,
			Mode:     jrt.Deterministic,
			Seed:     seed,
		})
		prog := mj.MustCheck(src)
		interp, err := mj.NewInterp(prog, mj.InterpConfig{Runtime: rt, Out: os.Stdout})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		races, err := interp.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(races) > 0 {
			fmt.Printf("seed %d: race detected and handled: %v\n", seed, &races[0])
			return
		}
	}
	fmt.Println("no interleaving exposed the race in 50 seeds (close ran before or after the loop each time)")
}
