// Example 2 of the paper: hand-over-hand ownership transfer through
// container locks. The execution is race-free, but every Eraser-style
// lockset detector false-alarms on it because the protecting lock
// changes over time. This example prints the Figure 6 lockset evolution
// computed by the Goldilocks rules, then shows the verdicts of
// Goldilocks and the baseline detectors side by side.
//
// Run with: go run ./examples/ownership
package main

import (
	"fmt"

	"goldilocks/internal/bench"
	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/detectors/basic"
	"goldilocks/internal/detectors/eraser"
	"goldilocks/internal/hb"
	"goldilocks/internal/scenarios"
)

func main() {
	fmt.Print(bench.Figure6())
	fmt.Println()

	sc := scenarios.Ownership()
	detectors := []detect.Detector{
		core.New(),
		core.NewSpecEngine(),
		hb.NewDetector(),
		eraser.New(),
		basic.New(),
	}
	fmt.Println("Detector verdicts on Example 2 (ground truth: race-free):")
	for _, d := range detectors {
		races := detect.RunTrace(d, sc.Trace)
		verdict := "race-free ✓"
		if len(races) > 0 {
			verdict = fmt.Sprintf("FALSE ALARM at action %d (%v)", races[0].Pos, races[0].Var)
		}
		fmt.Printf("  %-16s %s\n", d.Name(), verdict)
	}
}
