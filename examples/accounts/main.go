// Example 4 of the paper: mixing a software transaction with monitor
// synchronization on the same account. Every access is "protected" by
// something, but the transaction's internal mechanism owes nothing to
// the object monitors, so the accesses to checking.bal race — and the
// runtime must report it regardless of how the transaction manager is
// implemented. Here the DataRaceException doubles as a conflict
// detector: the transfer rolls back and is retried under the monitor.
//
// Run with: go run ./examples/accounts
package main

import (
	"fmt"

	"goldilocks/internal/core"
	"goldilocks/internal/jrt"
	"goldilocks/internal/stm"
)

func main() {
	for seed := int64(0); seed < 50; seed++ {
		if demo(seed) {
			return
		}
	}
	fmt.Println("no interleaving exposed the conflict in 50 seeds")
}

func demo(seed int64) bool {
	rt := jrt.NewRuntime(jrt.Config{
		Detector: core.New(),
		Policy:   jrt.Throw,
		Mode:     jrt.Deterministic,
		Seed:     seed,
	})
	tm := stm.New()
	conflicted := false

	rt.Run(func(t *jrt.Thread) {
		acct := rt.DefineClass("Account", jrt.FieldDecl{Name: "bal"})
		bal := acct.MustFieldID("bal")
		savings, checking := t.New(acct), t.New(acct)
		t.Set(savings, bal, 100)
		t.Set(checking, bal, 100)

		// Thread 2: synchronized withdraw(42) on checking.
		withdrawer := t.Spawn(func(u *jrt.Thread) {
			if drx := u.Try(func() {
				u.Synchronized(checking, func() {
					v, _ := u.Get(checking, bal).(int)
					u.Set(checking, bal, v-42)
				})
			}); drx != nil {
				fmt.Printf("seed %d: withdraw interrupted: %v\n", seed, drx)
				conflicted = true
			}
		})

		// Thread 1: atomic transfer savings -> checking.
		transfer := func(tx *stm.Tx) {
			s, _ := tx.Get(savings, bal).(int)
			c, _ := tx.Get(checking, bal).(int)
			tx.Set(savings, bal, s-42)
			tx.Set(checking, bal, c+42)
		}
		if drx := t.Try(func() { tm.Atomic(t, transfer) }); drx != nil {
			fmt.Printf("seed %d: transfer conflicted and rolled back: %v\n", seed, drx)
			conflicted = true
			// Optimistic recovery: redo the transfer under the account
			// monitors, which does synchronize with withdraw.
			t.Synchronized(savings, func() {
				t.Synchronized(checking, func() {
					s, _ := t.GetUnchecked(savings, bal).(int)
					c, _ := t.GetUnchecked(checking, bal).(int)
					t.SetUnchecked(savings, bal, s-42)
					t.SetUnchecked(checking, bal, c+42)
				})
			})
		}
		t.Join(withdrawer)

		s, _ := t.GetUnchecked(savings, bal).(int)
		c, _ := t.GetUnchecked(checking, bal).(int)
		if conflicted {
			fmt.Printf("seed %d: final balances: savings=%d checking=%d (total %d)\n", seed, s, c, s+c)
		}
	})
	return conflicted
}
