// The transactional Multiset of Section 6.1 / Table 3, run end to end:
// clients insert, remove, and count elements through transactions while
// input arrays come from a lock-guarded factory — the mixed
// lock/transaction regime the paper evaluates. Prints the measured
// runtimes and the transaction counts for a few thread counts.
//
// Run with: go run ./examples/multiset
package main

import (
	"fmt"
	"os"

	"goldilocks/internal/bench"
)

func main() {
	rows, err := bench.Table3([]int{5, 10, 20}, 8, func(s string) {
		fmt.Fprintln(os.Stderr, s)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(bench.FormatTable3(rows))
	fmt.Println("\nNo DataRaceException was thrown: the execution is sequentially")
	fmt.Println("consistent and the transactions are strongly atomic.")
}
